//! Notification-conservation auditing: a zero-cost-when-disabled observer
//! that proves every enqueued notification is serviced exactly once.
//!
//! The HyperPlane recovery machinery (QWAIT timeouts, backoff epochs, the
//! watchdog, monitoring-set re-registration) exists to uphold one
//! end-to-end invariant under faults: **conservation** — no enqueued item
//! is ever lost (a missed wake-up that recovery never repairs) and none is
//! ever serviced twice (a timeout racing a real doorbell, or a spurious
//! wake-up double-draining a queue). The [`Auditor`] checks that invariant
//! directly instead of inferring it from throughput.
//!
//! Like [`crate::trace::Tracer`], the auditor obeys the observer
//! contract:
//!
//! * **Pure.** It draws no randomness and schedules no events; a run with
//!   the auditor attached is bit-identical to a bare run of the same seed.
//! * **Zero cost when disabled.** Every hook begins with an `enabled`
//!   check and returns immediately; a disabled auditor holds no memory.
//! * **Bounded.** State is one byte plus one timestamp per item id, dense
//!   in the engine's item-sequence space.
//!
//! The engine calls [`Auditor::on_enqueue`] when an item is admitted,
//! [`Auditor::on_dequeue`] when a worker pops it, and
//! [`Auditor::on_service`] when its service completes. At the end of the
//! run, [`Auditor::finalize`] reconciles the auditor's view against the
//! engine's residual backlog: any item the auditor still holds as
//! enqueued beyond what the queues actually contain was *lost*, and any
//! shortfall means items materialized without an enqueue.

/// Per-item lifecycle states tracked by the auditor.
const UNSEEN: u8 = 0;
const ENQUEUED: u8 = 1;
const DEQUEUED: u8 = 2;
const SERVICED: u8 = 3;

/// Conservation violations and lifecycle totals, produced by
/// [`Auditor::finalize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Items the auditor saw enqueued.
    pub enqueued: u64,
    /// Items the auditor saw dequeued.
    pub dequeued: u64,
    /// Items the auditor saw serviced.
    pub serviced: u64,
    /// Items still enqueued-but-not-dequeued when the run ended.
    pub still_enqueued: u64,
    /// Items dequeued-but-not-serviced when the run ended (in a worker's
    /// batch at the horizon — legitimate in-flight work).
    pub in_flight: u64,
    /// The engine's own residual queue backlog at the horizon, for
    /// reconciliation against `still_enqueued`.
    pub residual_backlog: u64,
    /// Enqueued items that vanished: `still_enqueued` in excess of the
    /// engine's residual backlog. A non-zero value is a lost wake-up the
    /// recovery machinery never repaired.
    pub lost: u64,
    /// Dequeues of an item already dequeued or serviced — a double
    /// service in the making.
    pub double_dequeues: u64,
    /// Service completions for an item already serviced.
    pub double_services: u64,
    /// Dequeues or services of an item never enqueued.
    pub phantoms: u64,
    /// Worst observed enqueue-to-service latency, cycles, over items that
    /// completed. Under faults this bounds the recovery the run actually
    /// delivered.
    pub max_enqueue_to_service_cycles: u64,
}

impl AuditReport {
    /// Whether conservation held: nothing lost, nothing double-handled,
    /// nothing phantom, and the auditor's residual view agrees exactly
    /// with the engine's backlog.
    pub fn ok(&self) -> bool {
        self.lost == 0
            && self.double_dequeues == 0
            && self.double_services == 0
            && self.phantoms == 0
            && self.still_enqueued == self.residual_backlog
    }

    /// Total violation count across every class.
    pub fn violations(&self) -> u64 {
        self.lost
            + self.double_dequeues
            + self.double_services
            + self.phantoms
            + self.still_enqueued.abs_diff(self.residual_backlog)
    }
}

/// The conservation auditor. Construct with [`Auditor::disabled`] (the
/// default, free) or [`Auditor::enabled`].
#[derive(Debug, Clone, Default)]
pub struct Auditor {
    enabled: bool,
    /// Lifecycle state per item id (dense in the engine's item-sequence
    /// space, grown on demand).
    state: Vec<u8>,
    /// Enqueue timestamp per item id, cycles; valid while state >=
    /// ENQUEUED.
    enq_at: Vec<u64>,
    enqueued: u64,
    dequeued: u64,
    serviced: u64,
    double_dequeues: u64,
    double_services: u64,
    phantoms: u64,
    max_enqueue_to_service: u64,
}

impl Auditor {
    /// An inert auditor: every hook returns immediately, no allocation.
    pub fn disabled() -> Self {
        Auditor::default()
    }

    /// A live auditor, pre-sized for roughly `items` ids.
    pub fn enabled(items: usize) -> Self {
        Auditor {
            enabled: true,
            state: Vec::with_capacity(items),
            enq_at: Vec::with_capacity(items),
            ..Auditor::default()
        }
    }

    /// Whether the auditor is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn slot(&mut self, item: u64) -> usize {
        let i = item as usize;
        if i >= self.state.len() {
            self.state.resize(i + 1, UNSEEN);
            self.enq_at.resize(i + 1, 0);
        }
        i
    }

    /// Records the admission of `item` at `now` (cycles).
    #[inline]
    pub fn on_enqueue(&mut self, item: u64, now: u64) {
        if !self.enabled {
            return;
        }
        let i = self.slot(item);
        // Item ids are unique by construction; a repeat enqueue would be
        // an engine bug and shows up as a phantom on the later dequeue.
        self.state[i] = ENQUEUED;
        self.enq_at[i] = now;
        self.enqueued += 1;
    }

    /// Records a worker popping `item`.
    #[inline]
    pub fn on_dequeue(&mut self, item: u64) {
        if !self.enabled {
            return;
        }
        let i = self.slot(item);
        match self.state[i] {
            ENQUEUED => {
                self.state[i] = DEQUEUED;
                self.dequeued += 1;
            }
            DEQUEUED | SERVICED => self.double_dequeues += 1,
            _ => self.phantoms += 1,
        }
    }

    /// Records the service completion of `item` at `now` (cycles).
    #[inline]
    pub fn on_service(&mut self, item: u64, now: u64) {
        if !self.enabled {
            return;
        }
        let i = self.slot(item);
        match self.state[i] {
            DEQUEUED => {
                self.state[i] = SERVICED;
                self.serviced += 1;
                let wait = now.saturating_sub(self.enq_at[i]);
                if wait > self.max_enqueue_to_service {
                    self.max_enqueue_to_service = wait;
                }
            }
            SERVICED => self.double_services += 1,
            // Service without a dequeue (ENQUEUED or UNSEEN) is a phantom.
            _ => self.phantoms += 1,
        }
    }

    /// Reconciles against the engine's residual queue backlog and
    /// produces the report. Call once, at the end of the run.
    pub fn finalize(&self, residual_backlog: u64) -> AuditReport {
        let mut still_enqueued = 0u64;
        let mut in_flight = 0u64;
        for &s in &self.state {
            match s {
                ENQUEUED => still_enqueued += 1,
                DEQUEUED => in_flight += 1,
                _ => {}
            }
        }
        AuditReport {
            enqueued: self.enqueued,
            dequeued: self.dequeued,
            serviced: self.serviced,
            still_enqueued,
            in_flight,
            residual_backlog,
            lost: still_enqueued.saturating_sub(residual_backlog),
            double_dequeues: self.double_dequeues,
            double_services: self.double_services,
            phantoms: self.phantoms,
            max_enqueue_to_service_cycles: self.max_enqueue_to_service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_auditor_is_inert_and_allocation_free() {
        let mut a = Auditor::disabled();
        assert!(!a.is_enabled());
        a.on_enqueue(0, 10);
        a.on_dequeue(0);
        a.on_service(0, 20);
        assert_eq!(a.state.capacity(), 0);
        let r = a.finalize(0);
        assert_eq!(r, AuditReport::default());
        assert!(r.ok());
    }

    #[test]
    fn clean_lifecycle_conserves() {
        let mut a = Auditor::enabled(8);
        for item in 0..5u64 {
            a.on_enqueue(item, item * 100);
        }
        for item in 0..4u64 {
            a.on_dequeue(item);
            a.on_service(item, 1_000 + item);
        }
        // Item 4 legitimately remains queued at the horizon.
        let r = a.finalize(1);
        assert!(r.ok(), "{r:?}");
        assert_eq!((r.enqueued, r.dequeued, r.serviced), (5, 4, 4));
        assert_eq!(r.still_enqueued, 1);
        assert_eq!(r.lost, 0);
        // Item 0 waits longest: enqueued at 0, serviced at 1_000.
        assert_eq!(r.max_enqueue_to_service_cycles, 1_000);
    }

    #[test]
    fn lost_item_detected_via_backlog_reconciliation() {
        let mut a = Auditor::enabled(4);
        a.on_enqueue(0, 0);
        a.on_enqueue(1, 0);
        a.on_dequeue(0);
        a.on_service(0, 5);
        // Item 1 never dequeued — and the engine says its queues are
        // empty. That is a lost notification.
        let r = a.finalize(0);
        assert!(!r.ok());
        assert_eq!(r.lost, 1);
        assert_eq!(r.violations(), 2); // lost + backlog mismatch
    }

    #[test]
    fn double_service_and_double_dequeue_detected() {
        let mut a = Auditor::enabled(4);
        a.on_enqueue(0, 0);
        a.on_dequeue(0);
        a.on_dequeue(0); // double dequeue
        a.on_service(0, 10);
        a.on_service(0, 20); // double service
        let r = a.finalize(0);
        assert!(!r.ok());
        assert_eq!(r.double_dequeues, 1);
        assert_eq!(r.double_services, 1);
    }

    #[test]
    fn phantom_lifecycle_detected() {
        let mut a = Auditor::enabled(4);
        a.on_dequeue(7); // never enqueued
        a.on_enqueue(1, 0);
        a.on_service(1, 5); // serviced without a dequeue
        let r = a.finalize(0);
        assert!(!r.ok());
        assert_eq!(r.phantoms, 2);
    }

    #[test]
    fn in_flight_work_is_not_a_violation() {
        let mut a = Auditor::enabled(2);
        a.on_enqueue(0, 0);
        a.on_dequeue(0);
        // Run ends while the worker still holds item 0.
        let r = a.finalize(0);
        assert!(r.ok(), "{r:?}");
        assert_eq!(r.in_flight, 1);
    }
}
