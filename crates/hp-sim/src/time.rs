//! Simulated time.
//!
//! The simulator measures time in **CPU cycles** of the modeled chip. Two
//! newtypes keep absolute instants and durations apart:
//!
//! * [`SimTime`] — an absolute instant (cycles since simulation start).
//! * [`Cycles`] — a duration.
//!
//! A [`Clock`] converts between wall-clock units (nanoseconds, microseconds)
//! and cycles for a given core frequency. The paper's Table I class machine
//! is modeled at 2.0 GHz, the [`Clock::default`].
//!
//! # Examples
//!
//! ```
//! use hp_sim::time::{Clock, Cycles, SimTime};
//!
//! let clock = Clock::default(); // 2.0 GHz
//! let one_us = clock.micros_to_cycles(1.0);
//! assert_eq!(one_us, Cycles(2_000));
//!
//! let t = SimTime::ZERO + one_us;
//! assert_eq!(clock.cycles_to_micros(t.since_start()), 1.0);
//! ```

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute simulated instant, in cycles since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A duration, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Duration elapsed since the simulation origin.
    #[inline]
    pub fn since_start(self) -> Cycles {
        Cycles(self.0)
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Cycles {
        debug_assert!(earlier <= self, "time went backwards: {earlier} > {self}");
        Cycles(self.0.saturating_sub(earlier.0))
    }

    /// Saturating difference, clamping at zero instead of panicking.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Cycles {
        Cycles(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Cycles {
    /// The zero-length duration.
    pub const ZERO: Cycles = Cycles(0);

    /// Raw cycle count.
    #[inline]
    pub fn count(self) -> u64 {
        self.0
    }

    /// Saturating subtraction of durations.
    #[inline]
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// Scale a duration by an integer factor.
    #[inline]
    pub fn scaled(self, factor: u64) -> Cycles {
        Cycles(self.0 * factor)
    }
}

impl Add<Cycles> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Cycles) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Cycles> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: SimTime) -> Cycles {
        self.since(rhs)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl core::iter::Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}cyc", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

/// Converts between wall-clock units and cycles at a fixed core frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    cycles_per_sec: f64,
}

impl Default for Clock {
    /// A 2.0 GHz clock, matching the modeled server-class core.
    fn default() -> Self {
        Clock::from_ghz(2.0)
    }
}

impl Clock {
    /// Creates a clock running at `ghz` gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(
            ghz.is_finite() && ghz > 0.0,
            "clock frequency must be positive, got {ghz}"
        );
        Clock {
            cycles_per_sec: ghz * 1e9,
        }
    }

    /// The clock frequency in GHz.
    pub fn ghz(&self) -> f64 {
        self.cycles_per_sec / 1e9
    }

    /// Converts microseconds to (rounded) cycles.
    pub fn micros_to_cycles(&self, us: f64) -> Cycles {
        Cycles((us * 1e-6 * self.cycles_per_sec).round() as u64)
    }

    /// Converts nanoseconds to (rounded) cycles.
    pub fn nanos_to_cycles(&self, ns: f64) -> Cycles {
        Cycles((ns * 1e-9 * self.cycles_per_sec).round() as u64)
    }

    /// Converts a duration to fractional microseconds.
    pub fn cycles_to_micros(&self, c: Cycles) -> f64 {
        c.0 as f64 / self.cycles_per_sec * 1e6
    }

    /// Converts a duration to fractional seconds.
    pub fn cycles_to_secs(&self, c: Cycles) -> f64 {
        c.0 as f64 / self.cycles_per_sec
    }

    /// Converts an event count over a duration into a rate in events/second.
    ///
    /// Returns 0.0 for a zero-length window.
    pub fn rate_per_sec(&self, events: u64, window: Cycles) -> f64 {
        if window.0 == 0 {
            0.0
        } else {
            events as f64 / self.cycles_to_secs(window)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_roundtrips() {
        let t = SimTime(100) + Cycles(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), Cycles(50));
        assert_eq!(t.since(SimTime(150)), Cycles::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(SimTime(5).saturating_since(SimTime(10)), Cycles::ZERO);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    #[cfg(debug_assertions)]
    fn since_panics_on_backwards_time() {
        let _ = SimTime(5).since(SimTime(10));
    }

    #[test]
    fn clock_default_is_2ghz() {
        let c = Clock::default();
        assert_eq!(c.ghz(), 2.0);
        assert_eq!(c.micros_to_cycles(1.0), Cycles(2000));
        assert_eq!(c.nanos_to_cycles(0.5), Cycles(1));
    }

    #[test]
    fn clock_rate_computation() {
        let c = Clock::default();
        // 2000 events in 1 ms of simulated time => 2M events/s.
        let window = c.micros_to_cycles(1000.0);
        assert_eq!(c.rate_per_sec(2000, window), 2_000_000.0);
        assert_eq!(c.rate_per_sec(10, Cycles::ZERO), 0.0);
    }

    #[test]
    fn clock_micros_roundtrip() {
        let c = Clock::from_ghz(3.0);
        let cyc = c.micros_to_cycles(7.5);
        assert!((c.cycles_to_micros(cyc) - 7.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn clock_rejects_zero_frequency() {
        let _ = Clock::from_ghz(0.0);
    }

    #[test]
    fn cycles_sum_and_scale() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
        assert_eq!(Cycles(6).scaled(3), Cycles(18));
        assert_eq!(Cycles(6).saturating_sub(Cycles(10)), Cycles::ZERO);
    }
}
