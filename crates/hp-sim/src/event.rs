//! The event queue at the heart of the discrete-event kernel.
//!
//! [`EventQueue`] is a priority queue of `(time, payload)` pairs with a
//! strict total order: events fire in time order, and events scheduled for
//! the same instant fire in insertion order (FIFO tie-breaking via a
//! monotonically increasing sequence number). Popping an event advances the
//! queue's notion of *now*; scheduling into the past is a logic error.
//!
//! # Examples
//!
//! ```
//! use hp_sim::event::EventQueue;
//! use hp_sim::time::{Cycles, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule_after(Cycles(10), "b");
//! q.schedule_at(SimTime(5), "a");
//! assert_eq!(q.pop(), Some((SimTime(5), "a")));
//! assert_eq!(q.pop(), Some((SimTime(10), "b")));
//! assert_eq!(q.pop(), None);
//! ```

use crate::time::{Cycles, SimTime};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// The queue owns the simulation clock: [`EventQueue::now`] is the timestamp
/// of the most recently popped event (initially [`SimTime::ZERO`]).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulated instant (time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than [`Self::now`]: a causality violation in
    /// the model, never a recoverable condition.
    pub fn schedule_at(&mut self, t: SimTime, payload: E) {
        assert!(
            t >= self.now,
            "scheduling into the past: {t} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Reverse(Scheduled {
            time: t,
            seq,
            payload,
        }));
    }

    /// Schedules `payload` to fire `delay` after *now*.
    pub fn schedule_after(&mut self, delay: Cycles, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(ev) = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (telemetry).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

/// Outcome of a bounded simulation run driven by [`run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event queue drained before the horizon.
    Drained,
    /// The event budget was exhausted (guard against runaway models).
    BudgetExhausted,
}

/// Drives `queue` by repeatedly popping events and passing them to `handler`
/// until the clock passes `horizon`, the queue drains, or `max_events` have
/// been processed.
///
/// The handler receives the event timestamp, the payload, and a mutable
/// borrow of the queue so it can schedule follow-up events.
///
/// # Examples
///
/// ```
/// use hp_sim::event::{run_until, EventQueue, RunOutcome};
/// use hp_sim::time::{Cycles, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime(1), 1u64);
/// let mut sum = 0;
/// let outcome = run_until(&mut q, SimTime(100), u64::MAX, |_, n, q| {
///     sum += n;
///     if n < 4 {
///         q.schedule_after(Cycles(1), n + 1);
///     }
/// });
/// assert_eq!(outcome, RunOutcome::Drained);
/// assert_eq!(sum, 1 + 2 + 3 + 4);
/// ```
pub fn run_until<E>(
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    max_events: u64,
    mut handler: impl FnMut(SimTime, E, &mut EventQueue<E>),
) -> RunOutcome {
    let mut processed = 0u64;
    loop {
        match queue.peek_time() {
            None => return RunOutcome::Drained,
            Some(t) if t > horizon => return RunOutcome::HorizonReached,
            Some(_) => {}
        }
        if processed >= max_events {
            return RunOutcome::BudgetExhausted;
        }
        let (t, payload) = queue.pop().expect("peeked event must pop");
        handler(t, payload, queue);
        processed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), 3);
        q.schedule_at(SimTime(10), 1);
        q.schedule_at(SimTime(20), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        assert_eq!(q.pop(), Some((SimTime(30), 3)));
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(7), i)));
        }
    }

    #[test]
    fn pop_advances_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(42));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), "first");
        q.pop();
        q.schedule_after(Cycles(5), "second");
        assert_eq!(q.pop(), Some((SimTime(105), "second")));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), ());
        let mut count = 0;
        let outcome = run_until(&mut q, SimTime(10), u64::MAX, |_, (), q| {
            count += 1;
            q.schedule_after(Cycles(3), ());
        });
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Events at 1, 4, 7, 10 fire; the one at 13 does not.
        assert_eq!(count, 4);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn run_until_respects_budget() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), ());
        let outcome = run_until(&mut q, SimTime(u64::MAX), 10, |_, (), q| {
            q.schedule_after(Cycles(1), ());
        });
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn telemetry_counts_scheduled() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), ());
        q.schedule_at(SimTime(2), ());
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
