//! The event queue at the heart of the discrete-event kernel.
//!
//! [`EventQueue`] is a priority queue of `(time, payload)` pairs with a
//! strict total order: events fire in time order, and events scheduled for
//! the same instant fire in insertion order (FIFO tie-breaking). Popping an
//! event advances the queue's notion of *now*; scheduling into the past is
//! a logic error.
//!
//! ## Implementation: a calendar wheel with a far-horizon heap
//!
//! The kernel profile (`hp_sim::profile`) shows the event mix is dominated
//! by short-delay self-reschedules: poll-loop iterations tens of cycles
//! out, service completions a few thousand cycles out. The queue therefore
//! keeps a **calendar wheel** of `WHEEL_SLOTS` one-cycle buckets covering
//! the window `[base, base + WHEEL_SLOTS)`, backed by a binary heap for the
//! far horizon:
//!
//! * *Insert* into the window is push-to-bucket, O(1); each bucket holds
//!   the events of exactly one instant, so bucket FIFO order *is*
//!   insertion order and no comparisons are ever made.
//! * *Pop* scans an occupancy bitmap (64 slots per word) from the window
//!   base to the next non-empty bucket — at most `WHEEL_SLOTS / 64` word
//!   reads, typically one or two.
//! * Events beyond the window go to the far heap, ordered by
//!   `(time, seq)`; whenever the window advances, due events migrate into
//!   their buckets in heap order, which preserves the global FIFO
//!   tie-break.
//!
//! The observable order is **identical** to the previous
//! `BinaryHeap<Reverse<(time, seq)>>` implementation — pinned by the
//! property tests in `tests/properties_kernels.rs` — only the constant
//! factors changed.
//!
//! # Examples
//!
//! ```
//! use hp_sim::event::EventQueue;
//! use hp_sim::time::{Cycles, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule_after(Cycles(10), "b");
//! q.schedule_at(SimTime(5), "a");
//! assert_eq!(q.pop(), Some((SimTime(5), "a")));
//! assert_eq!(q.pop(), Some((SimTime(10), "b")));
//! assert_eq!(q.pop(), None);
//! ```

use crate::time::{Cycles, SimTime};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

/// Calendar-wheel window size in cycles (one bucket per cycle). Power of
/// two so slot indexing is a mask. 4096 cycles (~2 µs at 2 GHz) covers the
/// poll-iteration and service-time delays that dominate the event mix;
/// longer delays (idle-period arrivals, watchdog ticks, QWAIT timeouts)
/// take the far-heap path.
const WHEEL_SLOTS: usize = 4096;
const WHEEL_MASK: usize = WHEEL_SLOTS - 1;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// The queue owns the simulation clock: [`EventQueue::now`] is the timestamp
/// of the most recently popped event (initially [`SimTime::ZERO`]).
#[derive(Debug)]
pub struct EventQueue<E> {
    /// First event of each one-cycle bucket of the window
    /// `[base, base + WHEEL_SLOTS)`; slot index is `time & WHEEL_MASK`.
    /// Storing the head inline means the dominant singleton-bucket case
    /// (one self-reschedule per instant) touches only this dense array
    /// and the occupancy bitmap — never a `VecDeque`'s heap buffer.
    /// Invariant: `heads[slot]` is `Some` ⇔ the bucket's occupancy bit is
    /// set; `tails[slot]` is non-empty only while the head is `Some`.
    heads: Vec<Option<E>>,
    /// Overflow beyond each bucket's inline head, in insertion order.
    /// Within a bucket all events share one timestamp, so head-then-tail
    /// FIFO order is insertion order.
    tails: Vec<VecDeque<E>>,
    /// Occupancy bitmap over the buckets (bit set ⇔ bucket non-empty).
    occupied: [u64; WHEEL_WORDS],
    /// Events in the wheel.
    near_len: usize,
    /// Events at or beyond `base + WHEEL_SLOTS`, ordered by `(time, seq)`.
    far: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Window base: every wheel event's time is in
    /// `[base, base + WHEEL_SLOTS)`, every far event's at or beyond the
    /// end. Equals `now` between operations; advances only in `pop`.
    base: u64,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heads: (0..WHEEL_SLOTS).map(|_| None).collect(),
            tails: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WHEEL_WORDS],
            near_len: 0,
            far: BinaryHeap::new(),
            base: 0,
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// The current simulated instant (time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than [`Self::now`]: a causality violation in
    /// the model, never a recoverable condition.
    pub fn schedule_at(&mut self, t: SimTime, payload: E) {
        assert!(
            t >= self.now,
            "scheduling into the past: {t} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        // `t >= now >= base`, so the subtraction cannot wrap.
        if t.0 - self.base < WHEEL_SLOTS as u64 {
            self.bucket_push(t.0, payload);
        } else {
            self.far.push(Reverse(Scheduled {
                time: t,
                seq,
                payload,
            }));
        }
    }

    /// Schedules `payload` to fire `delay` after *now*.
    pub fn schedule_after(&mut self, delay: Cycles, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    #[inline]
    fn bucket_push(&mut self, t: u64, payload: E) {
        let slot = (t as usize) & WHEEL_MASK;
        let (w, bit) = (slot / 64, 1u64 << (slot % 64));
        if self.occupied[w] & bit == 0 {
            self.occupied[w] |= bit;
            self.heads[slot] = Some(payload);
        } else {
            self.tails[slot].push_back(payload);
        }
        self.near_len += 1;
    }

    /// Moves every far event now inside the window into its bucket. Heap
    /// pops come out `(time, seq)`-ordered, so same-instant events enter
    /// their bucket in insertion order.
    fn migrate_due(&mut self) {
        while let Some(Reverse(head)) = self.far.peek() {
            if head.time.0 - self.base >= WHEEL_SLOTS as u64 {
                break;
            }
            let Reverse(s) = self.far.pop().expect("peeked entry pops");
            self.bucket_push(s.time.0, s.payload);
        }
    }

    /// Offset (in slots ⇔ cycles) from the window base to the first
    /// occupied bucket. Caller guarantees `near_len > 0`.
    fn first_occupied_offset(&self) -> usize {
        let start = (self.base as usize) & WHEEL_MASK;
        let (start_word, start_bit) = (start / 64, start % 64);
        // Tail of the start word, then whole words, wrapping once back to
        // the start word's head.
        let head = self.occupied[start_word] & (!0u64 << start_bit);
        if head != 0 {
            return start_word * 64 + head.trailing_zeros() as usize - start;
        }
        for k in 1..=WHEEL_WORDS {
            let wi = (start_word + k) % WHEEL_WORDS;
            let mut w = self.occupied[wi];
            if k == WHEEL_WORDS {
                w &= !(!0u64 << start_bit); // only the unscanned head bits
            }
            if w != 0 {
                let pos = wi * 64 + w.trailing_zeros() as usize;
                return (pos + WHEEL_SLOTS - start) & WHEEL_MASK;
            }
        }
        unreachable!("near_len > 0 but no occupied bucket")
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.near_len == 0 {
            // Jump the window to the far horizon's first instant.
            let Reverse(head) = self.far.peek()?;
            self.base = head.time.0;
            self.migrate_due();
        }
        let off = self.first_occupied_offset();
        let t = self.base + off as u64;
        let slot = (t as usize) & WHEEL_MASK;
        let payload = self.heads[slot].take().expect("occupied bucket");
        self.near_len -= 1;
        match self.tails[slot].pop_front() {
            Some(next) => self.heads[slot] = Some(next),
            None => self.occupied[slot / 64] &= !(1 << (slot % 64)),
        }
        debug_assert!(t >= self.now.0);
        self.now = SimTime(t);
        if t > self.base {
            self.base = t;
            self.migrate_due();
        }
        Some((self.now, payload))
    }

    /// Removes the earliest event *run* — every pending event sharing the
    /// earliest timestamp — returning the first event and appending the
    /// rest to `out`, in exactly the order repeated [`EventQueue::pop`]
    /// calls would have produced, and advances the clock to that
    /// timestamp. Returns `None` when the queue is empty (then `out` is
    /// untouched).
    ///
    /// One wheel bucket holds the events of exactly one instant, so the
    /// run is the whole first occupied bucket: the occupancy bitmap is
    /// scanned once and the bucket bookkeeping is paid once for the run
    /// instead of per event. The run's head is returned directly, so the
    /// dominant singleton-run case costs the same as a plain `pop` — the
    /// spill to `out` only happens when a run really has a tail. Events
    /// scheduled *while the batch is being consumed* for this same
    /// instant carry later sequence numbers; they land in the (now empty)
    /// bucket and come out of the next `pop`/`pop_batch` — after the
    /// drained run, exactly as single-event popping would order them.
    pub fn pop_batch(&mut self, out: &mut VecDeque<E>) -> Option<(SimTime, E)> {
        if self.near_len == 0 {
            // Jump the window to the far horizon's first instant; events at
            // exactly that instant migrate into the bucket in `(time, seq)`
            // order before the drain below.
            let Reverse(head) = self.far.peek()?;
            self.base = head.time.0;
            self.migrate_due();
        }
        let off = self.first_occupied_offset();
        let t = self.base + off as u64;
        debug_assert!(t >= self.now.0);
        self.now = SimTime(t);
        if t > self.base {
            // Advancing the window cannot migrate events *at* `t` (far
            // events are at or beyond the old `base + WHEEL_SLOTS`, which
            // exceeds `t`), so the bucket drained below is the full run.
            self.base = t;
            self.migrate_due();
        }
        let slot = (t as usize) & WHEEL_MASK;
        let first = self.heads[slot].take().expect("occupied bucket");
        let rest = self.tails[slot].len();
        if rest > 0 {
            out.extend(self.tails[slot].drain(..));
        }
        self.near_len -= 1 + rest;
        self.occupied[slot / 64] &= !(1 << (slot % 64));
        Some((self.now, first))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.near_len > 0 {
            Some(SimTime(self.base + self.first_occupied_offset() as u64))
        } else {
            self.far.peek().map(|Reverse(s)| s.time)
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (telemetry).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

/// Outcome of a bounded simulation run driven by [`run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event queue drained before the horizon.
    Drained,
    /// The event budget was exhausted (guard against runaway models).
    BudgetExhausted,
}

/// Drives `queue` by repeatedly popping events and passing them to `handler`
/// until the clock passes `horizon`, the queue drains, or `max_events` have
/// been processed.
///
/// The handler receives the event timestamp, the payload, and a mutable
/// borrow of the queue so it can schedule follow-up events.
///
/// # Examples
///
/// ```
/// use hp_sim::event::{run_until, EventQueue, RunOutcome};
/// use hp_sim::time::{Cycles, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_at(SimTime(1), 1u64);
/// let mut sum = 0;
/// let outcome = run_until(&mut q, SimTime(100), u64::MAX, |_, n, q| {
///     sum += n;
///     if n < 4 {
///         q.schedule_after(Cycles(1), n + 1);
///     }
/// });
/// assert_eq!(outcome, RunOutcome::Drained);
/// assert_eq!(sum, 1 + 2 + 3 + 4);
/// ```
pub fn run_until<E>(
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    max_events: u64,
    mut handler: impl FnMut(SimTime, E, &mut EventQueue<E>),
) -> RunOutcome {
    let mut processed = 0u64;
    loop {
        match queue.peek_time() {
            None => return RunOutcome::Drained,
            Some(t) if t > horizon => return RunOutcome::HorizonReached,
            Some(_) => {}
        }
        if processed >= max_events {
            return RunOutcome::BudgetExhausted;
        }
        let (t, payload) = queue.pop().expect("peeked event must pop");
        handler(t, payload, queue);
        processed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), 3);
        q.schedule_at(SimTime(10), 1);
        q.schedule_at(SimTime(20), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        assert_eq!(q.pop(), Some((SimTime(30), 3)));
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(7), i)));
        }
    }

    #[test]
    fn ties_break_fifo_beyond_the_wheel_window() {
        // Same instant, far horizon: order must still be insertion order
        // after the heap→wheel migration.
        let far = SimTime(WHEEL_SLOTS as u64 * 3 + 17);
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule_at(far, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop(), Some((far, i)));
        }
    }

    #[test]
    fn near_and_far_events_interleave_correctly() {
        let mut q = EventQueue::new();
        let w = WHEEL_SLOTS as u64;
        q.schedule_at(SimTime(2 * w + 5), "far2");
        q.schedule_at(SimTime(3), "near");
        q.schedule_at(SimTime(w + 1), "far1");
        assert_eq!(q.pop(), Some((SimTime(3), "near")));
        // Window advanced past 3: far1 may have migrated; a same-time
        // insert must still fire after it.
        q.schedule_at(SimTime(w + 1), "late-insert");
        assert_eq!(q.pop(), Some((SimTime(w + 1), "far1")));
        assert_eq!(q.pop(), Some((SimTime(w + 1), "late-insert")));
        assert_eq!(q.pop(), Some((SimTime(2 * w + 5), "far2")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wheel_wraparound_keeps_time_order() {
        // Drive the window across many wheel lengths with small steps so
        // slots are reused repeatedly.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(0), 0u64);
        let mut expect = 0u64;
        let step = (WHEEL_SLOTS as u64 / 3) * 2 + 1;
        while let Some((t, n)) = q.pop() {
            assert_eq!(t, SimTime(expect * step));
            assert_eq!(n, expect);
            expect += 1;
            if expect < 40 {
                q.schedule_after(Cycles(step), expect);
            }
        }
        assert_eq!(expect, 40);
    }

    #[test]
    fn pop_advances_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(42));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(10), ());
        q.pop();
        q.schedule_at(SimTime(5), ());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), "first");
        q.pop();
        q.schedule_after(Cycles(5), "second");
        assert_eq!(q.pop(), Some((SimTime(105), "second")));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), ());
        let mut count = 0;
        let outcome = run_until(&mut q, SimTime(10), u64::MAX, |_, (), q| {
            count += 1;
            q.schedule_after(Cycles(3), ());
        });
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // Events at 1, 4, 7, 10 fire; the one at 13 does not.
        assert_eq!(count, 4);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn run_until_respects_budget() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), ());
        let outcome = run_until(&mut q, SimTime(u64::MAX), 10, |_, (), q| {
            q.schedule_after(Cycles(1), ());
        });
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn telemetry_counts_scheduled() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1), ());
        q.schedule_at(SimTime(2), ());
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_batch_matches_pop_sequence() {
        // Two queues fed identically; one drained by pop, one by
        // pop_batch. The concatenated batch runs must equal the pop order.
        let times = [5u64, 5, 5, 9, 9, 4096, 4096, 70_000, 70_000, 70_001];
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            a.schedule_at(SimTime(t), i);
            b.schedule_at(SimTime(t), i);
        }
        let mut by_pop = Vec::new();
        while let Some((t, p)) = a.pop() {
            by_pop.push((t, p));
        }
        let mut by_batch = Vec::new();
        let mut run = VecDeque::new();
        while let Some((t, head)) = b.pop_batch(&mut run) {
            assert_eq!(b.now(), t);
            by_batch.push((t, head));
            for p in run.drain(..) {
                by_batch.push((t, p));
            }
        }
        assert_eq!(by_pop, by_batch);
        assert_eq!(b.pop_batch(&mut run), None);
        assert!(run.is_empty());
    }

    #[test]
    fn pop_batch_orders_same_instant_reschedules_after_the_run() {
        // An event scheduled for the *current* instant while a batch is
        // outstanding must fire after the drained run (it has a later
        // seq), exactly as with single pops.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(3), "a");
        q.schedule_at(SimTime(3), "b");
        let mut run = VecDeque::new();
        assert_eq!(q.pop_batch(&mut run), Some((SimTime(3), "a")));
        assert_eq!(run, ["b"]);
        run.clear();
        q.schedule_at(SimTime(3), "c");
        q.schedule_at(SimTime(3), "d");
        assert_eq!(q.pop_batch(&mut run), Some((SimTime(3), "c")));
        assert_eq!(run, ["d"]);
    }

    #[test]
    fn pop_batch_interleaves_with_pop() {
        let mut q = EventQueue::new();
        for i in 0..6 {
            q.schedule_at(SimTime(10), i);
        }
        q.schedule_at(SimTime(11), 6);
        assert_eq!(q.pop(), Some((SimTime(10), 0)));
        let mut run = VecDeque::new();
        assert_eq!(q.pop_batch(&mut run), Some((SimTime(10), 1)));
        assert_eq!(run, [2, 3, 4, 5]);
        run.clear();
        assert_eq!(q.pop_batch(&mut run), Some((SimTime(11), 6)));
        assert!(run.is_empty(), "singleton run spills nothing");
    }

    #[test]
    fn peek_matches_pop_across_the_window_boundary() {
        let mut q = EventQueue::new();
        let times = [1u64, 5, 4095, 4096, 4097, 70_000, 70_000, 1 << 40];
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        for &t in &sorted {
            assert_eq!(q.peek_time(), Some(SimTime(t)));
            let (pt, _) = q.pop().unwrap();
            assert_eq!(pt, SimTime(t));
        }
        assert_eq!(q.peek_time(), None);
    }
}
