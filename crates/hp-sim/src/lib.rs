//! # hp-sim — discrete-event simulation kernel
//!
//! The foundation of the HyperPlane reproduction: a small, deterministic
//! discrete-event simulation kernel measured in CPU cycles, plus the
//! statistics machinery every experiment shares.
//!
//! This crate substitutes for the role gem5 plays in the paper's
//! methodology (§V-A): it provides the *clock*, the *event queue*, and the
//! *telemetry*, while the memory-system and data-plane models live in
//! `hp-mem` and `hp-sdp` respectively.
//!
//! ## Modules
//!
//! * [`time`] — [`SimTime`]/[`Cycles`] newtypes and the [`time::Clock`]
//!   frequency converter.
//! * [`event`] — the deterministic [`EventQueue`] with FIFO tie-breaking
//!   and the [`event::run_until`] driver.
//! * [`stats`] — HDR-style [`Histogram`] (percentiles + CDF),
//!   [`stats::OnlineStats`] and [`stats::TimeWeighted`] accumulators.
//! * [`rng`] — [`rng::RngFactory`] seed-derived deterministic streams and
//!   the service-time [`rng::Distribution`] shapes.
//! * [`faults`] — the deterministic [`faults::FaultPlan`] /
//!   [`faults::FaultInjector`] fault-injection plane (dropped/delayed
//!   doorbells, evictions, spurious wake-ups, stragglers).
//! * [`chaos`] — time-structured fault campaigns on top of [`faults`]:
//!   correlated bursts, phase windows, doorbell-reallocation churn.
//! * [`audit`] — the zero-cost-when-disabled [`audit::Auditor`]
//!   notification-conservation observer (no lost wake-ups, no double
//!   service).
//! * [`attrib`] — the streaming [`attrib::Attributor`] latency-attribution
//!   engine: per-notification causal span chains decomposed into additive
//!   phase components, with tail-exemplar capture.
//! * [`trace`] — the zero-cost-when-disabled [`trace::Tracer`] ring
//!   buffer of typed lifecycle records, plus the Chrome
//!   `trace_event` exporter [`trace::chrome_trace`].
//! * [`profile`] — [`profile::KernelProfile`] per-event-type
//!   counts/cycles for the sim kernel itself.
//!
//! ## Example: an M/M/1 queue in a few lines
//!
//! ```
//! use hp_sim::event::EventQueue;
//! use hp_sim::rng::{sample_exp, RngFactory};
//! use hp_sim::stats::Histogram;
//! use hp_sim::time::{Cycles, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//!
//! let mut q = EventQueue::new();
//! let mut rng = RngFactory::new(1).stream(0);
//! let (lambda, mu) = (1.0 / 100.0, 1.0 / 50.0); // per-cycle rates
//! let mut depth = 0u64;
//! let mut lat = Histogram::new();
//! let mut backlog: std::collections::VecDeque<SimTime> = Default::default();
//!
//! q.schedule_at(SimTime(0), Ev::Arrival);
//! while let Some((now, ev)) = q.pop() {
//!     if now > SimTime(5_000_000) { break; }
//!     match ev {
//!         Ev::Arrival => {
//!             backlog.push_back(now);
//!             depth += 1;
//!             if depth == 1 {
//!                 q.schedule_after(Cycles(sample_exp(&mut rng, 1.0 / mu) as u64), Ev::Departure);
//!             }
//!             q.schedule_after(Cycles(sample_exp(&mut rng, 1.0 / lambda) as u64), Ev::Arrival);
//!         }
//!         Ev::Departure => {
//!             let arrived = backlog.pop_front().unwrap();
//!             lat.record(now.since(arrived).count());
//!             depth -= 1;
//!             if depth > 0 {
//!                 q.schedule_after(Cycles(sample_exp(&mut rng, 1.0 / mu) as u64), Ev::Departure);
//!             }
//!         }
//!     }
//! }
//! // M/M/1 with rho = 0.5: mean sojourn = 1/(mu - lambda) = 100 cycles.
//! assert!((lat.mean() - 100.0).abs() < 10.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod audit;
pub mod chaos;
pub mod event;
pub mod faults;
pub mod profile;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::EventQueue;
pub use profile::KernelProfile;
pub use stats::Histogram;
pub use time::{Cycles, SimTime};
pub use trace::{SpanId, TraceKind, TraceRecord, Tracer};
