//! Chaos schedules: time-structured fault campaigns on top of
//! [`crate::faults`].
//!
//! The base fault plane flips an independent coin per event — useful for
//! steady-state rate sweeps, but real failure modes are *correlated*: a
//! directory bank conflict drops a burst of snoops, a firmware shootdown
//! evicts monitoring entries in a window, a driver reallocates doorbells
//! while traffic is in flight. A [`ChaosSchedule`] layers that time
//! structure over a base [`FaultPlan`] without touching the injector's
//! draw discipline:
//!
//! * **Bursts** ([`BurstSpec`]) — a periodic square wave. Inside each
//!   burst window the effective plan is the base plan with every
//!   probability scaled by `intensity` (clamped to 1); outside it is the
//!   base plan unchanged.
//! * **Phase windows** ([`PhaseWindow`]) — absolute-time campaign
//!   phases, each carrying its own complete [`FaultPlan`] that *replaces*
//!   the base plan while the window is open. Bursts still modulate on
//!   top, so "quiet phase + drop storm bursts" composes naturally.
//! * **Doorbell churn** ([`ChurnSpec`]) — a periodic Algorithm-1
//!   reallocation scenario: the engine tears a live queue's monitoring
//!   entry down and re-registers it at a spare doorbell line mid-traffic
//!   (the paper's Cuckoo-conflict path, exercised under load). The
//!   schedule only carries the cadence; the mechanics live in the engine.
//!
//! Determinism: a schedule is pure configuration. [`ChaosSchedule::
//! effective_plan`] is a pure function of `(schedule, base plan, now)`,
//! and the engine swaps plans only at [`ChaosSchedule::next_boundary`]
//! instants, so a chaos run replays bit-identically from its seed just
//! like every other run.

use crate::faults::{FaultPlan, FaultPlanError};

/// A periodic correlated-fault burst: for `len` cycles out of every
/// `period`, fault probabilities are multiplied by `intensity`.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstSpec {
    /// Square-wave period, cycles. Must be non-zero.
    pub period: u64,
    /// Burst length at the start of each period, cycles. Must be non-zero
    /// and no longer than the period.
    pub len: u64,
    /// Probability multiplier inside the burst (clamped into `[0, 1]`
    /// after scaling). Must be finite and non-negative; values below 1
    /// model calm-between-storms schedules where the *base* plan is the
    /// storm.
    pub intensity: f64,
}

/// An absolute-time campaign phase: while `start <= now < end`, `plan`
/// replaces the experiment's base fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseWindow {
    /// Window start, cycles since run start (inclusive).
    pub start: u64,
    /// Window end, cycles since run start (exclusive). Must exceed
    /// `start`.
    pub end: u64,
    /// The complete plan in force inside the window.
    pub plan: FaultPlan,
}

/// Periodic doorbell-reallocation churn (Algorithm 1 under load).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Cycles between reallocations. Must be non-zero.
    pub period: u64,
}

/// Error from [`ChaosSchedule::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// A burst spec has a zero period, a zero or over-long length, or a
    /// non-finite / negative intensity.
    BadBurst(String),
    /// A phase window is empty or inverted (`start >= end`).
    BadWindow {
        /// The window's start, cycles.
        start: u64,
        /// The window's end, cycles.
        end: u64,
    },
    /// Two phase windows overlap; which plan wins would be ambiguous.
    OverlappingWindows {
        /// Start of the second of the two clashing windows.
        start: u64,
    },
    /// A phase window carries an invalid fault plan.
    BadPhasePlan(FaultPlanError),
    /// A churn spec has a zero period.
    ZeroChurnPeriod,
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::BadBurst(why) => write!(f, "bad chaos burst: {why}"),
            ChaosError::BadWindow { start, end } => {
                write!(
                    f,
                    "chaos phase window [{start}, {end}) is empty or inverted"
                )
            }
            ChaosError::OverlappingWindows { start } => {
                write!(
                    f,
                    "chaos phase window starting at {start} overlaps its predecessor"
                )
            }
            ChaosError::BadPhasePlan(e) => write!(f, "chaos phase plan: {e}"),
            ChaosError::ZeroChurnPeriod => write!(f, "chaos churn period must be non-zero"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<FaultPlanError> for ChaosError {
    fn from(e: FaultPlanError) -> Self {
        ChaosError::BadPhasePlan(e)
    }
}

/// A time-structured fault campaign. The empty schedule is inert: the
/// effective plan is always the base plan and no churn fires.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSchedule {
    /// Periodic correlated burst, if any.
    pub burst: Option<BurstSpec>,
    /// Campaign phases, in ascending non-overlapping `start` order.
    pub phases: Vec<PhaseWindow>,
    /// Doorbell-reallocation churn cadence, if any.
    pub churn: Option<ChurnSpec>,
}

impl ChaosSchedule {
    /// The inert schedule.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a periodic burst (builder style).
    pub fn with_burst(mut self, period: u64, len: u64, intensity: f64) -> Self {
        self.burst = Some(BurstSpec {
            period,
            len,
            intensity,
        });
        self
    }

    /// Adds a campaign phase (builder style). Phases must be added in
    /// ascending order; `validate` enforces it.
    pub fn with_phase(mut self, start: u64, end: u64, plan: FaultPlan) -> Self {
        self.phases.push(PhaseWindow { start, end, plan });
        self
    }

    /// Adds doorbell-reallocation churn (builder style).
    pub fn with_churn(mut self, period: u64) -> Self {
        self.churn = Some(ChurnSpec { period });
        self
    }

    /// Whether the schedule does anything at all.
    pub fn is_active(&self) -> bool {
        self.burst.is_some() || !self.phases.is_empty() || self.churn.is_some()
    }

    /// Checks structural sanity: burst shape, window ordering and
    /// non-overlap, per-phase plan validity, churn period.
    ///
    /// # Errors
    ///
    /// The first [`ChaosError`] found.
    pub fn validate(&self) -> Result<(), ChaosError> {
        if let Some(b) = &self.burst {
            if b.period == 0 {
                return Err(ChaosError::BadBurst("period is zero".into()));
            }
            if b.len == 0 || b.len > b.period {
                return Err(ChaosError::BadBurst(format!(
                    "len {} not in [1, period {}]",
                    b.len, b.period
                )));
            }
            if !b.intensity.is_finite() || b.intensity < 0.0 {
                return Err(ChaosError::BadBurst(format!(
                    "intensity {} not finite and non-negative",
                    b.intensity
                )));
            }
        }
        let mut prev_end = 0u64;
        for (i, w) in self.phases.iter().enumerate() {
            if w.start >= w.end {
                return Err(ChaosError::BadWindow {
                    start: w.start,
                    end: w.end,
                });
            }
            if i > 0 && w.start < prev_end {
                return Err(ChaosError::OverlappingWindows { start: w.start });
            }
            prev_end = w.end;
            w.plan.validate()?;
        }
        if let Some(c) = &self.churn {
            if c.period == 0 {
                return Err(ChaosError::ZeroChurnPeriod);
            }
        }
        Ok(())
    }

    /// The plan in force at `now` (cycles since run start): phase
    /// override first, then burst scaling on top.
    pub fn effective_plan(&self, base: &FaultPlan, now: u64) -> FaultPlan {
        let phase = self
            .phases
            .iter()
            .find(|w| w.start <= now && now < w.end)
            .map(|w| &w.plan)
            .unwrap_or(base);
        match &self.burst {
            Some(b) if now % b.period < b.len => phase.scaled(b.intensity),
            _ => phase.clone(),
        }
    }

    /// The earliest instant strictly after `now` at which the effective
    /// plan can change (a burst edge or a phase boundary), or `None` if
    /// the plan is constant from `now` on. Churn is *not* a plan boundary
    /// — the engine schedules churn events on their own cadence.
    pub fn next_boundary(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now && next.is_none_or(|n| t < n) {
                next = Some(t);
            }
        };
        if let Some(b) = &self.burst {
            let phase_pos = now % b.period;
            let period_start = now - phase_pos;
            // The burst's falling edge this period, then the next rising
            // edge; `consider` keeps whichever is first and future.
            consider(period_start + b.len);
            consider(period_start + b.period);
        }
        for w in &self.phases {
            consider(w.start);
            consider(w.end);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm() -> FaultPlan {
        FaultPlan::parse("drop=0.2,evict=0.01").unwrap()
    }

    #[test]
    fn inert_schedule_is_identity() {
        let s = ChaosSchedule::none();
        assert!(!s.is_active());
        s.validate().unwrap();
        let base = storm();
        for now in [0u64, 1, 1_000_000] {
            assert_eq!(s.effective_plan(&base, now), base);
            assert_eq!(s.next_boundary(now), None);
        }
    }

    #[test]
    fn burst_square_wave_scales_inside_only() {
        let s = ChaosSchedule::none().with_burst(1_000, 250, 4.0);
        s.validate().unwrap();
        let base = storm();
        // Inside the burst: drop 0.2 * 4 = 0.8.
        let hot = s.effective_plan(&base, 100);
        assert!((hot.doorbell_drop - 0.8).abs() < 1e-12);
        assert!((hot.eviction - 0.04).abs() < 1e-12);
        // Outside: untouched.
        assert_eq!(s.effective_plan(&base, 250), base);
        assert_eq!(s.effective_plan(&base, 999), base);
        // Second period repeats.
        assert!((s.effective_plan(&base, 1_001).doorbell_drop - 0.8).abs() < 1e-12);
        // Boundaries: falling edge at 250, rising edge at 1000.
        assert_eq!(s.next_boundary(0), Some(250));
        assert_eq!(s.next_boundary(250), Some(1_000));
        assert_eq!(s.next_boundary(1_000), Some(1_250));
    }

    #[test]
    fn scaling_clamps_to_one() {
        let s = ChaosSchedule::none().with_burst(100, 100, 100.0);
        let hot = s.effective_plan(&storm(), 0);
        assert_eq!(hot.doorbell_drop, 1.0);
        assert_eq!(hot.eviction, 1.0);
        hot.validate().unwrap();
    }

    #[test]
    fn phase_window_replaces_base_and_composes_with_burst() {
        let quiet = FaultPlan::none();
        let s = ChaosSchedule::none()
            .with_phase(1_000, 2_000, storm())
            .with_burst(500, 100, 2.0);
        s.validate().unwrap();
        // Before the phase: base (quiet) plan, burst-scaled — still inert.
        assert!(!s.effective_plan(&quiet, 50).is_active());
        // Inside the phase, outside a burst: the phase plan verbatim.
        assert_eq!(s.effective_plan(&quiet, 1_200), storm());
        // Inside phase *and* burst: phase plan scaled.
        let both = s.effective_plan(&quiet, 1_550);
        assert!((both.doorbell_drop - 0.4).abs() < 1e-12);
        // After the phase: back to base.
        assert!(!s.effective_plan(&quiet, 2_600).is_active());
        // Phase edges are boundaries.
        assert_eq!(s.next_boundary(999), Some(1_000));
        assert_eq!(s.next_boundary(1_999), Some(2_000));
    }

    #[test]
    fn validate_rejects_malformed_schedules() {
        assert!(matches!(
            ChaosSchedule::none().with_burst(0, 1, 1.0).validate(),
            Err(ChaosError::BadBurst(_))
        ));
        assert!(matches!(
            ChaosSchedule::none().with_burst(10, 11, 1.0).validate(),
            Err(ChaosError::BadBurst(_))
        ));
        assert!(matches!(
            ChaosSchedule::none().with_burst(10, 5, f64::NAN).validate(),
            Err(ChaosError::BadBurst(_))
        ));
        assert!(matches!(
            ChaosSchedule::none()
                .with_phase(100, 100, FaultPlan::none())
                .validate(),
            Err(ChaosError::BadWindow { .. })
        ));
        assert!(matches!(
            ChaosSchedule::none()
                .with_phase(0, 200, FaultPlan::none())
                .with_phase(100, 300, FaultPlan::none())
                .validate(),
            Err(ChaosError::OverlappingWindows { start: 100 })
        ));
        let bad_plan = FaultPlan {
            doorbell_drop: 1.5,
            ..FaultPlan::none()
        };
        assert!(matches!(
            ChaosSchedule::none().with_phase(0, 10, bad_plan).validate(),
            Err(ChaosError::BadPhasePlan(_))
        ));
        assert!(matches!(
            ChaosSchedule::none().with_churn(0).validate(),
            Err(ChaosError::ZeroChurnPeriod)
        ));
        ChaosSchedule::none().with_churn(50_000).validate().unwrap();
    }

    #[test]
    fn next_boundary_walks_every_plan_change() {
        // Walking boundary to boundary from 0 must visit each edge once;
        // between consecutive boundaries the effective plan is constant.
        let s = ChaosSchedule::none()
            .with_phase(2_000, 3_000, storm())
            .with_burst(1_000, 400, 3.0);
        let base = FaultPlan::parse("spurious=0.1").unwrap();
        let mut edges = Vec::new();
        let mut now = 0u64;
        while let Some(b) = s.next_boundary(now) {
            if b > 5_000 {
                break;
            }
            // Constant in between (spot-check the midpoint).
            let mid = now + (b - now) / 2;
            assert_eq!(
                s.effective_plan(&base, now),
                s.effective_plan(&base, mid),
                "plan changed inside [{now}, {b})"
            );
            edges.push(b);
            now = b;
        }
        assert_eq!(
            edges,
            vec![400, 1_000, 1_400, 2_000, 2_400, 3_000, 3_400, 4_000, 4_400, 5_000]
        );
    }
}
