//! Deterministic, seedable fault injection for the simulation stack.
//!
//! A [`FaultPlan`] describes *what* can go wrong and how often; a
//! [`FaultInjector`] draws concrete fault decisions from its own dedicated
//! RNG stream so that enabling faults never perturbs the workload's
//! arrival or service draws — a faulty run and a fault-free run of the
//! same seed see byte-identical traffic. All decisions are pure functions
//! of `(plan, stream seed, call sequence)`, so a given configuration
//! replays bit-identically.
//!
//! The fault classes model the failure modes a notification accelerator
//! must tolerate (DESIGN.md §"Fault model & resilience"):
//!
//! * **Doorbell drop** — a GetM snoop is lost between the interconnect
//!   and the monitoring set; a QWAIT'd core misses its wake-up. This is
//!   the hazard the paper's `QWAIT-VERIFY` atomicity argument is about.
//! * **Doorbell delay** — the snoop is delivered late (buffered behind a
//!   directory-bank conflict), stretching notification latency.
//! * **Monitoring-set eviction** — a queue's entry is evicted (capacity
//!   conflict or firmware shootdown); its doorbell writes become
//!   invisible until the driver re-registers it.
//! * **Spurious wake-up** — the ready set is activated for a queue with
//!   no work (false sharing on the doorbell line); `QWAIT-VERIFY` must
//!   filter it.
//! * **Straggler** — a data-plane core stalls for a fixed number of
//!   cycles (SMI, frequency dip, noisy neighbor).
//! * **Queue-cap override** — shrink the per-queue backlog cap to force
//!   overflow; drops are accounted by the engine.
//!
//! Decisions are *key-addressed*, not stream-sequential: every draw is a
//! pure hash of `(stream seed, fault class, caller key)` — the caller
//! keys doorbell/eviction/spurious decisions by the work item's id,
//! straggler decisions by `(core, step counter)`, and churn picks by the
//! churn index. This makes each decision independent of how many *other*
//! decisions were drawn before it, which buys two guarantees at once:
//! switching one fault class on or off never shifts the draws of the
//! others, and a partitioned (parallel) engine that evaluates decisions
//! from different execution orders — or skips the decisions another
//! partition owns — still reproduces the serial engine's draws exactly.

use crate::rng::splitmix64;
use crate::time::Cycles;

/// What the injector decided to do with one doorbell notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoorbellFate {
    /// Deliver the GetM snoop normally.
    Deliver,
    /// Lose the snoop entirely (missed wake-up until recovery).
    Drop,
    /// Deliver the snoop after this many cycles.
    Delay(Cycles),
}

/// Error from [`FaultPlan::validate`] or [`FaultPlan::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A probability field is outside `[0, 1]`.
    BadProbability {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A spec-string key is not a known fault knob.
    UnknownKey(String),
    /// A spec-string value failed to parse.
    BadValue {
        /// The key whose value failed.
        key: String,
        /// The unparsable text.
        value: String,
    },
    /// A spec-string entry is not `key=value`.
    BadEntry(String),
    /// A spec-string key appears more than once. Last-write-wins parsing
    /// silently masks the earlier value, so duplicates are rejected.
    DuplicateKey(String),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::BadProbability { field, value } => {
                write!(
                    f,
                    "fault probability `{field}` must be in [0,1], got {value}"
                )
            }
            FaultPlanError::UnknownKey(k) => write!(f, "unknown fault knob `{k}`"),
            FaultPlanError::BadValue { key, value } => {
                write!(f, "fault knob `{key}` has unparsable value `{value}`")
            }
            FaultPlanError::BadEntry(e) => {
                write!(f, "fault spec entry `{e}` is not of the form key=value")
            }
            FaultPlanError::DuplicateKey(k) => {
                write!(f, "fault knob `{k}` appears more than once in the spec")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A declarative description of the faults to inject, with rates.
///
/// The default plan injects nothing. Plans are cheap to clone and compare;
/// [`FaultPlan::parse`] accepts a compact `key=value,...` spec string (the
/// workspace carries no serde) and [`std::fmt::Display`] round-trips it.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability a doorbell GetM snoop is dropped.
    pub doorbell_drop: f64,
    /// Probability a doorbell GetM snoop is delayed (evaluated only if
    /// the snoop was not dropped).
    pub doorbell_delay: f64,
    /// Delay applied to delayed snoops, cycles.
    pub delay_cycles: u64,
    /// Probability (per arrival) the arriving queue's monitoring-set
    /// entry is evicted just before the doorbell rings.
    pub eviction: f64,
    /// Probability (per arrival) a spurious ready-set activation is
    /// injected for a random queue of the arrival's group.
    pub spurious: f64,
    /// Probability (per core step) the core stalls as a straggler.
    pub straggler: f64,
    /// Straggler stall duration, cycles.
    pub stall_cycles: u64,
    /// If set, overrides (lowers) the per-queue backlog cap to force
    /// overflow drops.
    pub queue_cap: Option<usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            doorbell_drop: 0.0,
            doorbell_delay: 0.0,
            delay_cycles: 2_000,
            eviction: 0.0,
            spurious: 0.0,
            straggler: 0.0,
            stall_cycles: 50_000,
            queue_cap: None,
        }
    }
}

impl FaultPlan {
    /// The empty plan: inject nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault class is enabled.
    pub fn is_active(&self) -> bool {
        self.doorbell_drop > 0.0
            || self.doorbell_delay > 0.0
            || self.eviction > 0.0
            || self.spurious > 0.0
            || self.straggler > 0.0
            || self.queue_cap.is_some()
    }

    /// Checks that every probability is in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError::BadProbability`] naming the offending field.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for (field, value) in [
            ("drop", self.doorbell_drop),
            ("delay", self.doorbell_delay),
            ("evict", self.eviction),
            ("spurious", self.spurious),
            ("straggler", self.straggler),
        ] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(FaultPlanError::BadProbability { field, value });
            }
        }
        Ok(())
    }

    /// Parses a compact spec string, e.g.
    /// `"drop=0.1,delay=0.05,delay_cycles=4000,evict=0.01,cap=8"`.
    ///
    /// Recognized keys: `drop`, `delay`, `delay_cycles`, `evict`,
    /// `spurious`, `straggler`, `stall_cycles`, `cap`. Whitespace around
    /// entries is ignored; an empty string is the empty plan.
    ///
    /// # Errors
    ///
    /// [`FaultPlanError`] on unknown keys, duplicate keys, malformed
    /// entries, unparsable values, or out-of-range probabilities.
    pub fn parse(spec: &str) -> Result<Self, FaultPlanError> {
        let mut plan = FaultPlan::none();
        let mut seen: Vec<&str> = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| FaultPlanError::BadEntry(entry.to_string()))?;
            if seen.contains(&key) {
                return Err(FaultPlanError::DuplicateKey(key.to_string()));
            }
            seen.push(key);
            fn parsed<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, FaultPlanError> {
                value.parse().map_err(|_| FaultPlanError::BadValue {
                    key: key.to_string(),
                    value: value.to_string(),
                })
            }
            match key {
                "drop" => plan.doorbell_drop = parsed(key, value)?,
                "delay" => plan.doorbell_delay = parsed(key, value)?,
                "delay_cycles" => plan.delay_cycles = parsed(key, value)?,
                "evict" => plan.eviction = parsed(key, value)?,
                "spurious" => plan.spurious = parsed(key, value)?,
                "straggler" => plan.straggler = parsed(key, value)?,
                "stall_cycles" => plan.stall_cycles = parsed(key, value)?,
                "cap" => plan.queue_cap = Some(parsed(key, value)?),
                _ => return Err(FaultPlanError::UnknownKey(key.to_string())),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// This plan with every probability multiplied by `factor` and clamped
    /// to `[0, 1]`. Duration and cap knobs are unchanged — a chaos burst
    /// makes faults *more frequent*, not individually longer. The result
    /// of scaling a valid plan by a non-negative finite factor is always
    /// valid.
    pub fn scaled(&self, factor: f64) -> FaultPlan {
        let scale = |p: f64| (p * factor).clamp(0.0, 1.0);
        FaultPlan {
            doorbell_drop: scale(self.doorbell_drop),
            doorbell_delay: scale(self.doorbell_delay),
            eviction: scale(self.eviction),
            spurious: scale(self.spurious),
            straggler: scale(self.straggler),
            ..self.clone()
        }
    }
}

impl std::fmt::Display for FaultPlan {
    /// Round-trippable spec string (only non-default knobs are printed).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        let d = FaultPlan::default();
        if self.doorbell_drop != d.doorbell_drop {
            parts.push(format!("drop={}", self.doorbell_drop));
        }
        if self.doorbell_delay != d.doorbell_delay {
            parts.push(format!("delay={}", self.doorbell_delay));
        }
        if self.delay_cycles != d.delay_cycles {
            parts.push(format!("delay_cycles={}", self.delay_cycles));
        }
        if self.eviction != d.eviction {
            parts.push(format!("evict={}", self.eviction));
        }
        if self.spurious != d.spurious {
            parts.push(format!("spurious={}", self.spurious));
        }
        if self.straggler != d.straggler {
            parts.push(format!("straggler={}", self.straggler));
        }
        if self.stall_cycles != d.stall_cycles {
            parts.push(format!("stall_cycles={}", self.stall_cycles));
        }
        if let Some(cap) = self.queue_cap {
            parts.push(format!("cap={cap}"));
        }
        write!(f, "{}", parts.join(","))
    }
}

/// Counters of faults actually injected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Doorbell snoops dropped.
    pub doorbells_dropped: u64,
    /// Doorbell snoops delayed.
    pub doorbells_delayed: u64,
    /// Monitoring-set entries evicted.
    pub evictions: u64,
    /// Spurious ready-set activations injected.
    pub spurious_injected: u64,
    /// Straggler stalls injected.
    pub straggler_stalls: u64,
}

impl FaultCounters {
    /// Total faults of every class.
    pub fn total(&self) -> u64 {
        self.doorbells_dropped
            + self.doorbells_delayed
            + self.evictions
            + self.spurious_injected
            + self.straggler_stalls
    }
}

/// Decision classes, hashed into the draw so distinct classes keyed by
/// the same value (e.g. one item id) get independent decisions.
const CLASS_DROP: u64 = 1;
const CLASS_DELAY: u64 = 2;
const CLASS_EVICT: u64 = 3;
const CLASS_SPURIOUS: u64 = 4;
const CLASS_STRAGGLER: u64 = 5;
const CLASS_PICK: u64 = 6;

/// Draws concrete fault decisions per the plan — each a pure hash of
/// `(stream seed, fault class, caller key)` — and counts what it
/// injected.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Builds an injector for `plan` keyed by `stream_seed` (callers
    /// should derive the seed from the experiment's root seed via
    /// [`crate::rng::RngFactory::stream_seed`] so fault draws are
    /// independent of the workload streams).
    pub fn new(plan: FaultPlan, stream_seed: u64) -> Self {
        FaultInjector {
            plan,
            seed: stream_seed,
            counters: FaultCounters::default(),
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Swaps the active plan without touching the seed or counters.
    ///
    /// This is how a chaos schedule (see [`crate::chaos`]) modulates fault
    /// intensity mid-run: every decision stays a pure function of
    /// `(stream seed, class, key)`, only the thresholds move — so a plan
    /// swap can never shift any other decision, enabled classes included.
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// Faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// The raw draw: a well-mixed word for `(seed, class, key)`.
    #[inline]
    fn word(&self, class: u64, key: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(class ^ splitmix64(key)))
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    fn unit(&self, class: u64, key: u64) -> f64 {
        (self.word(class, key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial at probability `p` for `(class, key)`.
    #[inline]
    fn hit(&self, p: f64, class: u64, key: u64) -> bool {
        p > 0.0 && self.unit(class, key) < p
    }

    /// Decides the fate of the doorbell GetM notification for the work
    /// item `key`.
    pub fn doorbell_fate(&mut self, key: u64) -> DoorbellFate {
        if self.hit(self.plan.doorbell_drop, CLASS_DROP, key) {
            self.counters.doorbells_dropped += 1;
            return DoorbellFate::Drop;
        }
        if self.hit(self.plan.doorbell_delay, CLASS_DELAY, key) {
            self.counters.doorbells_delayed += 1;
            return DoorbellFate::Delay(Cycles(self.plan.delay_cycles));
        }
        DoorbellFate::Deliver
    }

    /// Whether to evict the monitoring entry of the queue receiving work
    /// item `key`. The caller reports whether an entry was actually
    /// present (so counters reflect real evictions, not no-ops) via
    /// [`Self::record_eviction`].
    pub fn evict_now(&mut self, key: u64) -> bool {
        self.hit(self.plan.eviction, CLASS_EVICT, key)
    }

    /// Records one realized monitoring-set eviction.
    pub fn record_eviction(&mut self) {
        self.counters.evictions += 1;
    }

    /// Whether to inject a spurious ready-set activation on the arrival
    /// of work item `key`.
    pub fn spurious_now(&mut self, key: u64) -> bool {
        if self.hit(self.plan.spurious, CLASS_SPURIOUS, key) {
            self.counters.spurious_injected += 1;
            return true;
        }
        false
    }

    /// Draws a straggler stall for one core step, if any. Callers key by
    /// the stepping core and its per-core step counter (e.g.
    /// `(core << 32) + step`) so each core's stall sequence is
    /// independent of every other core's schedule.
    pub fn straggler_stall(&mut self, key: u64) -> Option<Cycles> {
        if self.hit(self.plan.straggler, CLASS_STRAGGLER, key) {
            self.counters.straggler_stalls += 1;
            return Some(Cycles(self.plan.stall_cycles));
        }
        None
    }

    /// Uniform pick in `[0, n)` for `key` (used to choose the victim
    /// queue of a spurious activation, keyed by item id, and the churn
    /// target, keyed by churn index).
    pub fn pick(&mut self, key: u64, n: usize) -> usize {
        debug_assert!(n > 0);
        // Widening multiply maps the word onto [0, n) without modulo bias.
        ((self.word(CLASS_PICK, key) as u128 * n as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        plan.validate().unwrap();
        let mut inj = FaultInjector::new(plan, 42);
        for k in 0..100 {
            assert_eq!(inj.doorbell_fate(k), DoorbellFate::Deliver);
            assert!(!inj.evict_now(k));
            assert!(!inj.spurious_now(k));
            assert_eq!(inj.straggler_stall(k), None);
        }
        assert_eq!(inj.counters().total(), 0);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan {
            doorbell_drop: 0.3,
            doorbell_delay: 0.2,
            spurious: 0.1,
            straggler: 0.05,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(plan.clone(), 7);
        let mut b = FaultInjector::new(plan, 7);
        for k in 0..1000 {
            assert_eq!(a.doorbell_fate(k), b.doorbell_fate(k));
            assert_eq!(a.spurious_now(k), b.spurious_now(k));
            assert_eq!(a.straggler_stall(k), b.straggler_stall(k));
        }
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn rates_are_respected() {
        let plan = FaultPlan {
            doorbell_drop: 0.25,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 3);
        let n = 100_000;
        for k in 0..n {
            inj.doorbell_fate(k);
        }
        let frac = inj.counters().doorbells_dropped as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "drop fraction {frac}");
    }

    #[test]
    fn full_drop_drops_everything() {
        let plan = FaultPlan {
            doorbell_drop: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 1);
        for k in 0..100 {
            assert_eq!(inj.doorbell_fate(k), DoorbellFate::Drop);
        }
    }

    #[test]
    fn disabling_one_class_does_not_shift_another() {
        // Straggler draws must be identical whether or not doorbell
        // faults are configured: decisions are keyed, not sequential, so
        // enabling drops cannot shift the straggler sequence — even when
        // the drop rate is non-zero and fate calls are skipped entirely.
        let only = FaultPlan {
            straggler: 0.5,
            ..FaultPlan::none()
        };
        let with_drops = FaultPlan {
            straggler: 0.5,
            doorbell_drop: 0.7,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(only, 11);
        let mut b = FaultInjector::new(with_drops, 11);
        for k in 0..500 {
            // `a` interleaves fate calls; `b` never draws a fate at all.
            a.doorbell_fate(k);
            assert_eq!(a.straggler_stall(k), b.straggler_stall(k));
        }
    }

    #[test]
    fn parse_roundtrip() {
        let plan = FaultPlan::parse("drop=0.1, delay=0.05,delay_cycles=4000,cap=8").unwrap();
        assert_eq!(plan.doorbell_drop, 0.1);
        assert_eq!(plan.doorbell_delay, 0.05);
        assert_eq!(plan.delay_cycles, 4000);
        assert_eq!(plan.queue_cap, Some(8));
        assert!(plan.is_active());
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn parse_empty_is_inert() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("  ").unwrap(), FaultPlan::none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            FaultPlan::parse("bogus=1"),
            Err(FaultPlanError::UnknownKey(_))
        ));
        assert!(matches!(
            FaultPlan::parse("drop"),
            Err(FaultPlanError::BadEntry(_))
        ));
        assert!(matches!(
            FaultPlan::parse("drop=x"),
            Err(FaultPlanError::BadValue { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("drop=1.5"),
            Err(FaultPlanError::BadProbability { field: "drop", .. })
        ));
    }

    #[test]
    fn parse_rejects_duplicate_keys() {
        // Last-write-wins would silently take drop=0.9 here; the parser
        // must refuse instead.
        for spec in [
            "drop=0.1,drop=0.9",
            "drop=0.1, drop=0.1",
            "cap=8,delay=0.2,cap=16",
            "stall_cycles=10,stall_cycles=20",
        ] {
            match FaultPlan::parse(spec) {
                Err(FaultPlanError::DuplicateKey(k)) => {
                    assert!(
                        spec.contains(&format!("{k}=")),
                        "wrong key `{k}` for {spec}"
                    );
                }
                other => panic!("{spec}: expected DuplicateKey, got {other:?}"),
            }
        }
        // Distinct keys still parse, and an identical-value duplicate is
        // rejected just the same (the hazard is the masked intent, not
        // the masked value).
        FaultPlan::parse("drop=0.1,delay=0.1").unwrap();
        assert!(matches!(
            FaultPlan::parse("evict=0.5,evict=0.5"),
            Err(FaultPlanError::DuplicateKey(_))
        ));
    }

    #[test]
    fn display_roundtrip_never_emits_duplicates() {
        // Every Display output must re-parse under the duplicate-rejecting
        // grammar.
        let plan = FaultPlan {
            doorbell_drop: 0.25,
            doorbell_delay: 0.1,
            delay_cycles: 1234,
            eviction: 0.01,
            spurious: 0.02,
            straggler: 0.005,
            stall_cycles: 777,
            queue_cap: Some(4),
        };
        let reparsed = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn scaled_clamps_and_preserves_durations() {
        let plan = FaultPlan::parse("drop=0.4,evict=0.02,delay_cycles=4000,cap=8").unwrap();
        let hot = plan.scaled(3.0);
        assert_eq!(hot.doorbell_drop, 1.0);
        assert!((hot.eviction - 0.06).abs() < 1e-12);
        assert_eq!(hot.delay_cycles, 4000);
        assert_eq!(hot.queue_cap, Some(8));
        hot.validate().unwrap();
        let cold = plan.scaled(0.0);
        assert!(!FaultPlan {
            queue_cap: None,
            ..cold
        }
        .is_active());
    }

    #[test]
    fn set_plan_never_shifts_decisions() {
        // Two injectors on the same seed: one swaps plans mid-sequence
        // (including through a fully different plan and back), the other
        // never swaps. Decisions for the same key must agree whenever the
        // active plans agree.
        let plan = FaultPlan {
            doorbell_drop: 0.3,
            ..FaultPlan::none()
        };
        let storm = FaultPlan {
            doorbell_drop: 0.9,
            spurious: 0.5,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(plan.clone(), 9);
        let mut b = FaultInjector::new(plan.clone(), 9);
        for i in 0..400u64 {
            if i == 100 {
                a.set_plan(storm.clone());
            }
            if i == 200 {
                a.set_plan(plan.clone());
            }
            if !(100..200).contains(&i) {
                assert_eq!(a.doorbell_fate(i), b.doorbell_fate(i));
            }
        }
    }

    #[test]
    fn decisions_are_key_addressed_not_sequential() {
        // The same key yields the same decision no matter how many other
        // draws happened in between, and regardless of evaluation order —
        // the property the partitioned engine relies on.
        let plan = FaultPlan {
            doorbell_drop: 0.4,
            straggler: 0.2,
            spurious: 0.3,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(plan.clone(), 21);
        let mut b = FaultInjector::new(plan, 21);
        let forward: Vec<_> = (0..300).map(|k| a.doorbell_fate(k)).collect();
        let backward: Vec<_> = (0..300).rev().map(|k| b.doorbell_fate(k)).collect();
        for (k, fate) in forward.iter().enumerate() {
            assert_eq!(*fate, backward[299 - k]);
        }
        // Interleaving other classes changes nothing either.
        for k in 0..300 {
            b.straggler_stall(k);
            b.spurious_now(k);
        }
        for k in 0..300u64 {
            assert_eq!(b.doorbell_fate(k), forward[k as usize]);
        }
        // Picks are in range and deterministic per key.
        for k in 0..100 {
            let p = a.pick(k, 7);
            assert!(p < 7);
            assert_eq!(p, b.pick(k, 7));
        }
    }

    #[test]
    fn validate_rejects_nan() {
        let plan = FaultPlan {
            spurious: f64::NAN,
            ..FaultPlan::none()
        };
        assert!(plan.validate().is_err());
    }
}
