//! Statistics collection: latency histograms, running moments, and
//! time-weighted averages.
//!
//! The workhorse is [`Histogram`], an HDR-style log-linear histogram over
//! `u64` samples (cycles, typically). It offers bounded relative error
//! (controlled by the sub-bucket resolution), O(1) recording, and exact
//! count/total bookkeeping, which is what the latency-percentile and CDF
//! figures in the paper need (Figs. 3b/3c/9/10/12b).

/// Number of linear sub-buckets per power-of-two bucket (2^6 = 64 gives
/// ~1.6 % worst-case relative error — ample for percentile plots).
const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// An HDR-style log-linear histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use hp_sim::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.percentile(50.0).unwrap();
/// assert!((490..=520).contains(&p50), "p50 was {p50}");
/// assert_eq!(Histogram::new().percentile(50.0), None);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            count: 0,
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn index_of(value: u64) -> usize {
        // Values below SUB_BUCKETS map linearly (exact); above, log-linear:
        // each power-of-two range [2^m, 2^(m+1)) splits into 32 sub-buckets
        // of width 2^(m-5), bounding relative error by 1/32.
        if value < SUB_BUCKETS {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros() as u64; // >= 6
            let k = msb - (SUB_BUCKET_BITS as u64 - 1); // bucket group, >= 1
            let half = SUB_BUCKETS / 2;
            let sub = (value >> k) - half; // in [0, 32)
            (SUB_BUCKETS + (k - 1) * half + sub) as usize
        }
    }

    /// Records a single sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.total += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of recorded samples (0.0 when empty; prefer
    /// [`Histogram::try_mean`] when "no samples" must be distinguishable
    /// from "mean of zero").
    pub fn mean(&self) -> f64 {
        self.try_mean().unwrap_or(0.0)
    }

    /// Arithmetic mean, or `None` when no samples have been recorded.
    pub fn try_mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.total as f64 / self.count as f64)
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at or below which `p` percent of samples fall, or `None`
    /// for an empty histogram (a zero-sample run has no percentiles — a
    /// `0` here would be indistinguishable from a genuine zero-cycle
    /// latency).
    ///
    /// `p` is clamped to `[0, 100]`. The returned value has the
    /// histogram's bounded relative error.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(idx).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Upper edge of a bucket (used as the reported percentile value).
    fn bucket_upper(index: usize) -> u64 {
        let half = (SUB_BUCKETS / 2) as usize;
        if index < SUB_BUCKETS as usize {
            index as u64
        } else {
            let k = ((index - SUB_BUCKETS as usize) / half + 1) as u32;
            let sub = ((index - SUB_BUCKETS as usize) % half) as u64;
            // The top bucket's edge is 2^64, one past u64::MAX — widen to
            // u128 so samples near u64::MAX don't overflow the shift.
            let edge = (((half as u64 + sub + 1) as u128) << k) - 1;
            edge.min(u64::MAX as u128) as u64
        }
    }

    /// The empirical CDF sampled at each non-empty bucket: `(value,
    /// cumulative_fraction)` pairs, suitable for plotting Fig. 3(c).
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::new();
        if self.count == 0 {
            return out;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                Self::bucket_upper(idx).min(self.max),
                seen as f64 / self.count as f64,
            ));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Welford online mean/variance accumulator for `f64` samples.
///
/// # Examples
///
/// ```
/// use hp_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(v);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with fewer than one sample).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue depth,
/// core utilization, power draw).
///
/// Call [`TimeWeighted::set`] whenever the signal changes; the accumulator
/// integrates `value × dt` between updates.
///
/// # Examples
///
/// ```
/// use hp_sim::stats::TimeWeighted;
/// use hp_sim::time::SimTime;
///
/// let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
/// u.set(SimTime(10), 1.0); // signal was 0.0 over [0,10)
/// u.set(SimTime(30), 0.0); // signal was 1.0 over [10,30)
/// assert_eq!(u.average(SimTime(40)), 0.5); // 20 of 40 cycles at 1.0
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_change: crate::time::SimTime,
    current: f64,
    integral: f64,
    start: crate::time::SimTime,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial signal `value`.
    pub fn new(start: crate::time::SimTime, value: f64) -> Self {
        TimeWeighted {
            last_change: start,
            current: value,
            integral: 0.0,
            start,
        }
    }

    /// Updates the signal to `value` effective at time `now`.
    pub fn set(&mut self, now: crate::time::SimTime, value: f64) {
        let dt = now.saturating_since(self.last_change).count() as f64;
        self.integral += self.current * dt;
        self.current = value;
        self.last_change = now;
    }

    /// Current signal value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted average over `[start, now]`.
    pub fn average(&self, now: crate::time::SimTime) -> f64 {
        let dt_tail = now.saturating_since(self.last_change).count() as f64;
        let span = now.saturating_since(self.start).count() as f64;
        if span == 0.0 {
            self.current
        } else {
            (self.integral + self.current * dt_tail) / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn histogram_exact_for_small_values() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(63);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(63));
    }

    #[test]
    fn histogram_bounded_relative_error() {
        let mut h = Histogram::new();
        let vals: Vec<u64> = (0..10_000).map(|i| 100 + i * 37).collect();
        for &v in &vals {
            h.record(v);
        }
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let approx = h.percentile(p).unwrap() as f64;
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
            let exact = sorted[rank] as f64;
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.04, "p{p}: approx {approx} exact {exact} rel {rel}");
        }
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn histogram_cdf_monotone_and_complete() {
        let mut h = Histogram::new();
        for v in 1..=500u64 {
            h.record(v * 11);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= prev);
            prev = f;
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 3);
            } else {
                b.record(v * 3);
            }
            c.record(v * 3);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.mean(), c.mean());
        assert_eq!(a.percentile(99.0), c.percentile(99.0));
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.try_mean(), None);
        assert_eq!(h.percentile(99.0), None);
        assert!(h.cdf().is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_histogram_reports_that_sample() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.count(), 1);
        assert_eq!(h.try_mean(), Some(777.0));
        // Every percentile of a one-sample distribution is that sample
        // (up to bucket resolution, and clamped to [min, max]).
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(777), "p{p}");
        }
        assert_eq!(h.cdf(), vec![(777, 1.0)]);
    }

    #[test]
    fn saturating_value_histogram_does_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        // total is u128, so the mean stays exact-ish even at u64::MAX.
        let expect = (2.0 * u64::MAX as f64) / 3.0;
        assert!((h.mean() - expect).abs() / expect < 1e-12);
        // p100 must clamp to the recorded max, not a bucket edge past it.
        assert_eq!(h.percentile(100.0), Some(u64::MAX));
    }

    #[test]
    fn merge_with_disjoint_ranges() {
        let mut lo = Histogram::new();
        let mut hi = Histogram::new();
        for v in 1..=100u64 {
            lo.record(v);
            hi.record(v + 1_000_000);
        }
        lo.merge(&hi);
        assert_eq!(lo.count(), 200);
        assert_eq!(lo.min(), 1);
        assert_eq!(lo.max(), 1_000_100);
        // The median sits at the top of the low cluster.
        let p50 = lo.percentile(50.0).unwrap();
        assert!(p50 <= 101, "p50 was {p50}");
        let p75 = lo.percentile(75.0).unwrap();
        assert!(p75 >= 1_000_000, "p75 was {p75}");

        // Merging an empty histogram is a no-op.
        let before = lo.count();
        lo.merge(&Histogram::new());
        assert_eq!(lo.count(), before);

        // Merging *into* an empty histogram adopts the other's min/max.
        let mut empty = Histogram::new();
        empty.merge(&hi);
        assert_eq!(empty.min(), 1_000_001);
        assert_eq!(empty.max(), 1_000_100);
    }

    #[test]
    fn online_stats_single_sample() {
        let mut s = OnlineStats::new();
        s.record(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn time_weighted_constant_signal() {
        let u = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(u.average(SimTime(100)), 3.0);
    }

    #[test]
    fn time_weighted_zero_length_window() {
        // Before any time passes the only defensible average is the
        // current value — not 0/0.
        let mut u = TimeWeighted::new(SimTime(100), 4.0);
        assert_eq!(u.average(SimTime(100)), 4.0);
        u.set(SimTime(100), 6.0); // zero-length segment at 4.0
        assert_eq!(u.average(SimTime(100)), 6.0);
        assert!(u.average(SimTime(100)).is_finite());
    }

    #[test]
    fn time_weighted_step_signal() {
        let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
        u.set(SimTime(50), 2.0);
        // [0,50) at 0.0, [50,100) at 2.0 => average 1.0
        assert_eq!(u.average(SimTime(100)), 1.0);
        assert_eq!(u.current(), 2.0);
    }
}
