//! Streaming latency attribution: per-notification causal span chains
//! decomposed into additive phase components.
//!
//! The [`Attributor`] is a *streaming* consumer of the lifecycle record
//! taxonomy in [`crate::trace`]: the engine feeds it every record at emit
//! time, before the record enters (or is rejected by) the ring buffer, so
//! ring truncation can never bias the attribution. From that stream it
//! reconstructs each notification's causal chain —
//!
//! ```text
//! enqueue ──► ready (delivery / recovery) ──► core resume ──► dequeue ──► done
//! ```
//!
//! — and decomposes the measured enqueue→service latency into phase
//! components that **telescope**: each phase is the difference of two
//! adjacent chain anchors, so the components sum *exactly* to the
//! end-to-end total by construction. The invariant is still asserted on
//! every completion (`debug_assert` plus a released-build violation
//! counter) because the anchors come from independent record streams.
//!
//! Like the [`crate::trace::Tracer`] and [`crate::audit::Auditor`], the
//! attributor is a pure observer: it draws no randomness, schedules no
//! events, and costs one branch per record when disabled, so a run with
//! attribution on is bit-identical to the same seed with it off.

use crate::stats::Histogram;
use crate::time::SimTime;
use crate::trace::TraceKind;
use std::collections::HashMap;

/// One additive component of a notification's end-to-end latency.
///
/// The phases partition the enqueue→service-done interval; their order
/// here is the causal order along the chain. `Delivery` and `Recovery`
/// are mutually exclusive: a notification whose doorbell was lost or
/// whose monitoring entry was evicted has its doorbell→ready interval
/// attributed to `Recovery` (the fault-plane dark time until a sweep,
/// churn sync, or a later doorbell re-announced the queue) instead of
/// `Delivery`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Doorbell write → ready-set insertion: monitoring-set snoop plus
    /// any injected in-flight delay. Zero for spinning/interrupt runs
    /// (no ready set) and for doorbells landing on an already-ready
    /// queue.
    Delivery = 0,
    /// Doorbell write → ready-set insertion for a *faulted*
    /// notification: the dark time of a dropped doorbell or evicted
    /// monitoring entry until recovery re-announced the queue.
    Recovery = 1,
    /// Ready-set insertion → serving-core resume: the activation waiting
    /// for a core (includes in-flight wake latency). Zero when the
    /// serving core never halted (spin discovery time lands in
    /// `Dispatch`).
    ReadyWait = 2,
    /// Core resume → dequeue: QWAIT select/verify, descriptor read, and
    /// batch position; for spinning cores, the poll-loop discovery time.
    Dispatch = 3,
    /// Dequeue → service done: payload streaming, transport processing,
    /// and tenant notification.
    Service = 4,
}

impl Phase {
    /// Number of phases (length of [`Phase::ALL`]).
    pub const COUNT: usize = 5;

    /// All phases in causal order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Delivery,
        Phase::Recovery,
        Phase::ReadyWait,
        Phase::Dispatch,
        Phase::Service,
    ];

    /// Stable snake_case name (used in the JSON schema and diff tool).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Delivery => "delivery",
            Phase::Recovery => "recovery",
            Phase::ReadyWait => "ready_wait",
            Phase::Dispatch => "dispatch",
            Phase::Service => "service",
        }
    }
}

/// Number of counters in an exemplar's fast-path snapshot.
pub const SNAPSHOT_COUNTERS: usize = 8;

/// Labels for the exemplar fast-path counter snapshot, in array order.
/// These mirror the memory-system fast-path counters the engine samples
/// when an exemplar is captured.
pub const SNAPSHOT_LABELS: [&str; SNAPSHOT_COUNTERS] = [
    "mru_hits",
    "stable_hits",
    "seq_replays",
    "seq_replayed_accesses",
    "s_state_peeks",
    "stable_reloads",
    "shared_joins",
    "dir_hint_hits",
];

/// Default bound on retained tail exemplars.
pub const DEFAULT_EXEMPLARS: usize = 8;

/// One retained worst-case notification: the full span breakdown plus
/// the fast-path counter snapshot taken at capture time.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// Work-item id.
    pub item: u64,
    /// Queue the item arrived on.
    pub queue: u32,
    /// DP core that served it.
    pub core: u32,
    /// Enqueue instant, cycles since run start.
    pub enqueued_at: u64,
    /// End-to-end enqueue→service latency, cycles.
    pub latency: u64,
    /// Whether the fault plane darkened this notification (its
    /// doorbell→ready interval is attributed to [`Phase::Recovery`]).
    pub faulted: bool,
    /// Additive phase components, indexed by [`Phase`]; sums to
    /// `latency` exactly.
    pub phases: [u64; Phase::COUNT],
    /// Cumulative memory-system fast-path counters at capture time,
    /// in [`SNAPSHOT_LABELS`] order.
    pub counters: [u64; SNAPSHOT_COUNTERS],
}

/// Phase totals for one aggregation key (a queue or a core).
#[derive(Debug, Clone, Copy)]
pub struct GroupAttrib {
    /// The queue or core id.
    pub id: u32,
    /// Completions attributed under this key.
    pub count: u64,
    /// Summed phase cycles, indexed by [`Phase`].
    pub phase_cycles: [u64; Phase::COUNT],
}

/// The finished attribution: conservation accounting, phase-wise
/// percentile histograms, per-queue/per-core aggregation, and the
/// retained tail exemplars. Produced by [`Attributor::finalize`].
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Notifications whose full chain completed (serviced).
    pub completed: u64,
    /// Notifications still in flight at run end (never serviced; their
    /// partial chains are discarded, not mis-attributed).
    pub incomplete: u64,
    /// Completions whose phase components did *not* sum to the measured
    /// end-to-end latency. Zero by construction; anything else is a bug
    /// in the chain reconstruction.
    pub violations: u64,
    /// Sum of end-to-end latency over all completions, cycles.
    pub total_cycles: u64,
    /// Summed cycles per phase; `phase_totals` sums to `total_cycles`.
    pub phase_totals: [u64; Phase::COUNT],
    /// Per-phase latency histograms (cycles), indexed by [`Phase`].
    pub phase_hists: [Histogram; Phase::COUNT],
    /// End-to-end latency histogram (cycles) over attributed
    /// completions.
    pub end_to_end: Histogram,
    /// Phase totals keyed by queue (queues with completions only,
    /// ascending id).
    pub per_queue: Vec<GroupAttrib>,
    /// Phase totals keyed by serving DP core (ascending id).
    pub per_core: Vec<GroupAttrib>,
    /// The K worst notifications by end-to-end latency, worst first.
    pub exemplars: Vec<Exemplar>,
}

impl AttributionReport {
    /// Whether every completion's phase components summed exactly to
    /// its measured end-to-end latency.
    pub fn conserved(&self) -> bool {
        self.violations == 0 && self.phase_totals.iter().sum::<u64>() == self.total_cycles
    }

    /// Summed cycles attributed to `phase`.
    pub fn phase_total(&self, phase: Phase) -> u64 {
        self.phase_totals[phase as usize]
    }

    /// Fraction of all attributed cycles spent in `phase` (0 when
    /// nothing completed).
    pub fn phase_share(&self, phase: Phase) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.phase_total(phase) as f64 / self.total_cycles as f64
        }
    }
}

/// A notification's chain anchors accumulated from the record stream.
#[derive(Debug, Clone, Copy)]
struct PendingChain {
    queue: u32,
    core: u32,
    enq: u64,
    ready: Option<u64>,
    resume: Option<u64>,
    deq: Option<u64>,
    faulted: bool,
}

/// Per-aggregation-key accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct Agg {
    count: u64,
    phases: [u64; Phase::COUNT],
}

/// The streaming attribution engine. Feed it every lifecycle record via
/// [`Attributor::observe`] as it is emitted; call
/// [`Attributor::finalize`] at run end.
#[derive(Debug)]
pub struct Attributor {
    enabled: bool,
    exemplar_cap: usize,
    pending: HashMap<u64, PendingChain>,
    // Per-queue stream state, grown on demand. `last_ready` is the most
    // recent ready-set insertion; `last_enq` binds a same-instant
    // doorbell-drop record to the item it belongs to; `dark` marks a
    // queue whose pending notifications may be unannounced (set by
    // drop/evict, cleared by any activation); `live` lists pending item
    // ids so an eviction can fault-mark the whole queue.
    q_last_ready: Vec<Option<u64>>,
    q_last_enq: Vec<Option<u64>>,
    q_dark: Vec<bool>,
    q_live: Vec<Vec<u64>>,
    // Most recent resume instant (Wake or Recovery) per DP core.
    core_resume: Vec<Option<u64>>,
    // Aggregates.
    completed: u64,
    violations: u64,
    total_cycles: u64,
    phase_totals: [u64; Phase::COUNT],
    phase_hists: [Histogram; Phase::COUNT],
    end_to_end: Histogram,
    per_queue: Vec<Agg>,
    per_core: Vec<Agg>,
    exemplars: Vec<Exemplar>,
    // Set when the last observed completion entered the exemplar set;
    // the engine then attaches the fast-path counter snapshot.
    snapshot_slot: Option<usize>,
}

impl Attributor {
    /// A disabled attributor: every call is a single-branch no-op.
    pub fn disabled() -> Self {
        Self::build(false, 0)
    }

    /// An enabled attributor retaining at most `exemplars` worst-case
    /// notifications ([`DEFAULT_EXEMPLARS`] is the conventional bound).
    pub fn enabled(exemplars: usize) -> Self {
        Self::build(true, exemplars)
    }

    fn build(enabled: bool, exemplar_cap: usize) -> Self {
        Attributor {
            enabled,
            exemplar_cap,
            pending: HashMap::new(),
            q_last_ready: Vec::new(),
            q_last_enq: Vec::new(),
            q_dark: Vec::new(),
            q_live: Vec::new(),
            core_resume: Vec::new(),
            completed: 0,
            violations: 0,
            total_cycles: 0,
            phase_totals: [0; Phase::COUNT],
            phase_hists: std::array::from_fn(|_| Histogram::new()),
            end_to_end: Histogram::new(),
            per_queue: Vec::new(),
            per_core: Vec::new(),
            exemplars: Vec::new(),
            snapshot_slot: None,
        }
    }

    /// Whether attribution is being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn grow_queue(&mut self, q: u32) {
        let need = q as usize + 1;
        if self.q_last_ready.len() < need {
            self.q_last_ready.resize(need, None);
            self.q_last_enq.resize(need, None);
            self.q_dark.resize(need, false);
            self.q_live.resize_with(need, Vec::new);
            self.per_queue.resize(need, Agg::default());
        }
    }

    fn grow_core(&mut self, c: u32) {
        let need = c as usize + 1;
        if self.core_resume.len() < need {
            self.core_resume.resize(need, None);
            self.per_core.resize(need, Agg::default());
        }
    }

    /// Consumes one lifecycle record at emit time. Records irrelevant to
    /// the causal chain (halts, spans, stalls…) are ignored.
    pub fn observe(&mut self, at: SimTime, kind: &TraceKind) {
        if !self.enabled {
            return;
        }
        let t = at.since_start().count();
        match *kind {
            TraceKind::Enqueue { queue, item } => {
                self.grow_queue(queue);
                let qi = queue as usize;
                // A queue darkened by a drop/evict strands its backlog:
                // an item arriving before the next activation shares the
                // recovery fate of the items already waiting.
                let faulted = self.q_dark[qi];
                self.pending.insert(
                    item,
                    PendingChain {
                        queue,
                        core: 0,
                        enq: t,
                        ready: None,
                        resume: None,
                        deq: None,
                        faulted,
                    },
                );
                self.q_last_enq[qi] = Some(item);
                self.q_live[qi].push(item);
            }
            // Any ready-set insertion announces the queue: real snoop
            // hits, delayed deliveries, churn migration syncs, recovery
            // sweeps, and spurious activations all make pending work
            // discoverable.
            TraceKind::ReadyInsert { queue } | TraceKind::FaultSpurious { queue } => {
                self.grow_queue(queue);
                self.q_last_ready[queue as usize] = Some(t);
                self.q_dark[queue as usize] = false;
            }
            TraceKind::FaultDropped { queue } => {
                self.grow_queue(queue);
                let qi = queue as usize;
                // The drop record follows its Enqueue at the same
                // instant: fault-mark exactly that item.
                if let Some(item) = self.q_last_enq[qi] {
                    if let Some(p) = self.pending.get_mut(&item) {
                        p.faulted = true;
                    }
                }
                self.q_dark[qi] = true;
            }
            TraceKind::FaultEvicted { queue } => {
                self.grow_queue(queue);
                let qi = queue as usize;
                // An evicted monitoring entry darkens every pending
                // notification of the queue, not just the newest.
                for &item in &self.q_live[qi] {
                    if let Some(p) = self.pending.get_mut(&item) {
                        p.faulted = true;
                    }
                }
                self.q_dark[qi] = true;
            }
            TraceKind::Wake { core } | TraceKind::Recovery { core } => {
                self.grow_core(core);
                self.core_resume[core as usize] = Some(t);
            }
            TraceKind::Dequeue { queue, core, item } => {
                self.grow_queue(queue);
                self.grow_core(core);
                let ready = self.q_last_ready[queue as usize];
                let resume = self.core_resume[core as usize];
                if let Some(p) = self.pending.get_mut(&item) {
                    p.deq = Some(t);
                    p.core = core;
                    p.ready = ready.filter(|&r| r >= p.enq);
                    p.resume = resume;
                }
            }
            TraceKind::ServiceDone { item, .. } => {
                if let Some(chain) = self.pending.remove(&item) {
                    let qi = chain.queue as usize;
                    if let Some(pos) = self.q_live[qi].iter().position(|&x| x == item) {
                        self.q_live[qi].swap_remove(pos);
                    }
                    self.complete(item, chain, t);
                }
            }
            _ => {}
        }
    }

    /// Resolves a completed chain into telescoping phase components and
    /// folds it into the aggregates.
    fn complete(&mut self, item: u64, chain: PendingChain, done: u64) {
        let enq = chain.enq;
        let done = done.max(enq);
        let deq = chain.deq.unwrap_or(done).clamp(enq, done);
        // Chain anchors, clamped monotone. A missing ready anchor means
        // the queue was never (re)announced for this item: a faulted
        // chain falls back to the serving core's resume instant (the
        // recovery sweep), a clean one to the enqueue instant (spin
        // discovery — the wait lands downstream).
        let ready_raw = if chain.faulted {
            chain.ready.or(chain.resume)
        } else {
            chain.ready
        };
        let ready = ready_raw.unwrap_or(enq).clamp(enq, deq);
        // The serving core's resume is on this chain only if it happened
        // after the activation; otherwise the core was already running
        // and the wake phase is empty.
        let resume = match chain.resume {
            Some(r) if r >= ready => r.min(deq),
            _ => deq,
        };
        let mut phases = [0u64; Phase::COUNT];
        let announce = ready - enq;
        if chain.faulted {
            phases[Phase::Recovery as usize] = announce;
        } else {
            phases[Phase::Delivery as usize] = announce;
        }
        phases[Phase::ReadyWait as usize] = resume - ready;
        phases[Phase::Dispatch as usize] = deq - resume;
        phases[Phase::Service as usize] = done - deq;

        let latency = done - enq;
        let sum: u64 = phases.iter().sum();
        debug_assert_eq!(
            sum, latency,
            "phase components must telescope to the end-to-end latency"
        );
        if sum != latency {
            self.violations += 1;
        }

        self.completed += 1;
        self.total_cycles += latency;
        self.end_to_end.record(latency);
        for (i, &v) in phases.iter().enumerate() {
            self.phase_totals[i] += v;
            self.phase_hists[i].record(v);
        }
        for agg in [
            &mut self.per_queue[chain.queue as usize],
            &mut self.per_core[chain.core as usize],
        ] {
            agg.count += 1;
            for (i, &v) in phases.iter().enumerate() {
                agg.phases[i] += v;
            }
        }

        self.consider_exemplar(Exemplar {
            item,
            queue: chain.queue,
            core: chain.core,
            enqueued_at: enq,
            latency,
            faulted: chain.faulted,
            phases,
            counters: [0; SNAPSHOT_COUNTERS],
        });
    }

    /// Bounded K-worst capture, deterministic tie-break on item id.
    fn consider_exemplar(&mut self, ex: Exemplar) {
        if self.exemplar_cap == 0 {
            return;
        }
        if self.exemplars.len() < self.exemplar_cap {
            self.exemplars.push(ex);
            self.snapshot_slot = Some(self.exemplars.len() - 1);
            return;
        }
        let (min_slot, min_ex) = self
            .exemplars
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.latency, e.item))
            .expect("exemplar set is non-empty");
        if (ex.latency, ex.item) > (min_ex.latency, min_ex.item) {
            self.exemplars[min_slot] = ex;
            self.snapshot_slot = Some(min_slot);
        }
    }

    /// Whether the last observed completion entered the exemplar set and
    /// is waiting for its fast-path counter snapshot.
    pub fn wants_snapshot(&self) -> bool {
        self.snapshot_slot.is_some()
    }

    /// Attaches the fast-path counter snapshot (in [`SNAPSHOT_LABELS`]
    /// order) to the exemplar captured by the last completion.
    pub fn attach_snapshot(&mut self, counters: [u64; SNAPSHOT_COUNTERS]) {
        if let Some(slot) = self.snapshot_slot.take() {
            self.exemplars[slot].counters = counters;
        }
    }

    /// Closes the stream and produces the report. Chains still pending
    /// (never serviced) are counted, not attributed.
    pub fn finalize(self) -> AttributionReport {
        let mut exemplars = self.exemplars;
        exemplars.sort_by_key(|e| (std::cmp::Reverse(e.latency), e.item));
        let keyed = |aggs: Vec<Agg>| {
            aggs.into_iter()
                .enumerate()
                .filter(|(_, a)| a.count > 0)
                .map(|(id, a)| GroupAttrib {
                    id: id as u32,
                    count: a.count,
                    phase_cycles: a.phases,
                })
                .collect()
        };
        AttributionReport {
            completed: self.completed,
            incomplete: self.pending.len() as u64,
            violations: self.violations,
            total_cycles: self.total_cycles,
            phase_totals: self.phase_totals,
            phase_hists: self.phase_hists,
            end_to_end: self.end_to_end,
            per_queue: keyed(self.per_queue),
            per_core: keyed(self.per_core),
            exemplars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(t: u64) -> SimTime {
        SimTime(t)
    }

    /// Feeds one clean chain and checks the exact phase split.
    #[test]
    fn clean_chain_telescopes_exactly() {
        let mut a = Attributor::enabled(4);
        a.observe(at(100), &TraceKind::Enqueue { queue: 3, item: 7 });
        a.observe(at(100), &TraceKind::DoorbellWrite { queue: 3 });
        a.observe(at(100), &TraceKind::ReadyInsert { queue: 3 });
        a.observe(at(160), &TraceKind::Wake { core: 1 });
        a.observe(
            at(200),
            &TraceKind::Dequeue {
                queue: 3,
                core: 1,
                item: 7,
            },
        );
        a.observe(
            at(900),
            &TraceKind::ServiceDone {
                queue: 3,
                core: 1,
                item: 7,
            },
        );
        let r = a.finalize();
        assert_eq!(r.completed, 1);
        assert!(r.conserved());
        assert_eq!(r.phase_total(Phase::Delivery), 0); // ready at enqueue instant
        assert_eq!(r.phase_total(Phase::Recovery), 0);
        assert_eq!(r.phase_total(Phase::ReadyWait), 60); // 100 -> 160
        assert_eq!(r.phase_total(Phase::Dispatch), 40); // 160 -> 200
        assert_eq!(r.phase_total(Phase::Service), 700); // 200 -> 900
        assert_eq!(r.total_cycles, 800);
        assert_eq!(r.exemplars.len(), 1);
        assert_eq!(r.exemplars[0].phases.iter().sum::<u64>(), 800);
    }

    /// A dropped doorbell's dark time lands in `Recovery`, and the
    /// components still sum exactly.
    #[test]
    fn dropped_doorbell_attributes_recovery() {
        let mut a = Attributor::enabled(4);
        a.observe(at(0), &TraceKind::Enqueue { queue: 0, item: 1 });
        a.observe(at(0), &TraceKind::FaultDropped { queue: 0 });
        // Recovery sweep announces the queue much later.
        a.observe(at(5_000), &TraceKind::ReadyInsert { queue: 0 });
        a.observe(at(5_000), &TraceKind::Recovery { core: 0 });
        a.observe(
            at(5_200),
            &TraceKind::Dequeue {
                queue: 0,
                core: 0,
                item: 1,
            },
        );
        a.observe(
            at(5_700),
            &TraceKind::ServiceDone {
                queue: 0,
                core: 0,
                item: 1,
            },
        );
        let r = a.finalize();
        assert!(r.conserved());
        assert_eq!(r.phase_total(Phase::Delivery), 0);
        assert_eq!(r.phase_total(Phase::Recovery), 5_000);
        assert_eq!(r.phase_total(Phase::Dispatch), 200);
        assert_eq!(r.phase_total(Phase::Service), 500);
        assert!(r.exemplars[0].faulted);
    }

    /// An eviction darkens the whole backlog: both pending items recover.
    #[test]
    fn eviction_faults_all_pending_items() {
        let mut a = Attributor::enabled(4);
        a.observe(at(0), &TraceKind::Enqueue { queue: 2, item: 10 });
        a.observe(at(50), &TraceKind::Enqueue { queue: 2, item: 11 });
        a.observe(at(60), &TraceKind::FaultEvicted { queue: 2 });
        a.observe(at(900), &TraceKind::ReadyInsert { queue: 2 });
        for (deq, done, item) in [(1000, 1100, 10), (1000, 1200, 11)] {
            a.observe(
                at(deq),
                &TraceKind::Dequeue {
                    queue: 2,
                    core: 0,
                    item,
                },
            );
            a.observe(
                at(done),
                &TraceKind::ServiceDone {
                    queue: 2,
                    core: 0,
                    item,
                },
            );
        }
        let r = a.finalize();
        assert!(r.conserved());
        assert_eq!(r.completed, 2);
        // Item 10: 0->900 recovery; item 11: 50->900 recovery.
        assert_eq!(r.phase_total(Phase::Recovery), 900 + 850);
        assert!(r.exemplars.iter().all(|e| e.faulted));
    }

    /// The exemplar set is bounded and keeps the worst chains.
    #[test]
    fn exemplars_are_bounded_worst_k() {
        let mut a = Attributor::enabled(2);
        for i in 0..10u64 {
            a.observe(at(0), &TraceKind::Enqueue { queue: 0, item: i });
            a.observe(
                at(10),
                &TraceKind::Dequeue {
                    queue: 0,
                    core: 0,
                    item: i,
                },
            );
            a.observe(
                at(100 * (i + 1)),
                &TraceKind::ServiceDone {
                    queue: 0,
                    core: 0,
                    item: i,
                },
            );
        }
        let r = a.finalize();
        assert_eq!(r.completed, 10);
        assert_eq!(r.exemplars.len(), 2);
        assert_eq!(r.exemplars[0].latency, 1000);
        assert_eq!(r.exemplars[1].latency, 900);
        assert!(r.conserved());
    }

    /// Disabled: pure no-op, nothing accumulates.
    #[test]
    fn disabled_attributor_accumulates_nothing() {
        let mut a = Attributor::disabled();
        a.observe(at(0), &TraceKind::Enqueue { queue: 0, item: 1 });
        assert!(!a.is_enabled());
        let r = a.finalize();
        assert_eq!(r.completed, 0);
        assert_eq!(r.incomplete, 0);
        assert!(r.conserved());
    }

    /// Incomplete chains are counted but never attributed.
    #[test]
    fn incomplete_chains_are_counted_not_attributed() {
        let mut a = Attributor::enabled(4);
        a.observe(at(0), &TraceKind::Enqueue { queue: 0, item: 1 });
        a.observe(at(5), &TraceKind::Enqueue { queue: 0, item: 2 });
        a.observe(
            at(10),
            &TraceKind::Dequeue {
                queue: 0,
                core: 0,
                item: 1,
            },
        );
        a.observe(
            at(20),
            &TraceKind::ServiceDone {
                queue: 0,
                core: 0,
                item: 1,
            },
        );
        let r = a.finalize();
        assert_eq!(r.completed, 1);
        assert_eq!(r.incomplete, 1);
        assert_eq!(r.total_cycles, 20);
    }

    /// Snapshot plumbing: only a captured exemplar wants one.
    #[test]
    fn snapshot_attaches_to_captured_exemplar() {
        let mut a = Attributor::enabled(1);
        for (item, done) in [(1u64, 500u64), (2, 100)] {
            a.observe(at(0), &TraceKind::Enqueue { queue: 0, item });
            a.observe(
                at(10),
                &TraceKind::Dequeue {
                    queue: 0,
                    core: 0,
                    item,
                },
            );
            a.observe(
                at(done),
                &TraceKind::ServiceDone {
                    queue: 0,
                    core: 0,
                    item,
                },
            );
            if item == 1 {
                assert!(a.wants_snapshot());
                a.attach_snapshot([9; SNAPSHOT_COUNTERS]);
            } else {
                // Item 2 is faster than the retained worst: no capture.
                assert!(!a.wants_snapshot());
            }
        }
        let r = a.finalize();
        assert_eq!(r.exemplars.len(), 1);
        assert_eq!(r.exemplars[0].item, 1);
        assert_eq!(r.exemplars[0].counters, [9; SNAPSHOT_COUNTERS]);
    }
}
