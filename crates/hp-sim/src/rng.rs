//! Deterministic random-number streams and the distributions the workload
//! models draw from.
//!
//! Reproducibility is a first-class requirement: every experiment derives all
//! of its randomness from a single root seed through [`RngFactory`], which
//! hands out independent streams keyed by a stable `u64` id (one per core,
//! per traffic source, etc.). Re-running with the same seed reproduces every
//! event in the simulation bit-for-bit.

use hp_rand::rngs::SmallRng;
use hp_rand::{Rng, SeedableRng};

/// Derives independent, deterministic RNG streams from a root seed.
///
/// # Examples
///
/// ```
/// use hp_sim::rng::RngFactory;
/// use hp_rand::Rng;
///
/// let f = RngFactory::new(42);
/// let mut a = f.stream(0);
/// let mut b = f.stream(0);
/// assert_eq!(a.random::<u64>(), b.random::<u64>()); // same id => same stream
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RngFactory {
    root_seed: u64,
}

impl RngFactory {
    /// Creates a factory rooted at `root_seed`.
    pub fn new(root_seed: u64) -> Self {
        RngFactory { root_seed }
    }

    /// The root seed this factory was built from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    /// Returns the deterministic stream for `stream_id`.
    ///
    /// Streams with distinct ids are decorrelated by passing the
    /// `(root_seed, stream_id)` pair through a SplitMix64 finalizer before
    /// seeding.
    pub fn stream(&self, stream_id: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.stream_seed(stream_id))
    }

    /// The derived `u64` seed behind [`stream`](Self::stream), for
    /// consumers that hash per-decision keys against a stream-scoped seed
    /// instead of drawing sequentially (e.g.
    /// [`crate::faults::FaultInjector`]).
    pub fn stream_seed(&self, stream_id: u64) -> u64 {
        splitmix64(self.root_seed ^ splitmix64(stream_id.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed u64 -> u64 hash.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Samples an exponential random variable with the given `mean`.
///
/// Used for Poisson inter-arrival times (the paper's arrivals are Poisson)
/// and for exponentially distributed service times.
///
/// # Panics
///
/// Panics if `mean` is not strictly positive and finite.
pub fn sample_exp(rng: &mut impl Rng, mean: f64) -> f64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "exponential mean must be positive, got {mean}"
    );
    // Inverse CDF; guard the open interval so ln(0) cannot occur.
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Samples a deterministic (constant) "distribution" — provided so service
/// models can switch between CV=0 and CV=1 uniformly.
pub fn sample_const(_rng: &mut impl Rng, mean: f64) -> f64 {
    mean
}

/// A service/inter-arrival time distribution with a configurable shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Always exactly `mean`.
    Constant,
    /// Exponential with the given mean (CV = 1).
    Exponential,
    /// Two-point hyperexponential calibrated to coefficient of variation
    /// `cv` (> 1): a fraction of samples are drawn from a "long" branch.
    /// Captures heavy-tailed service times that cause head-of-line blocking.
    HyperExp {
        /// Coefficient of variation; must be > 1.
        cv: f64,
    },
}

impl Distribution {
    /// Draws one sample with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive, or if a `HyperExp` shape
    /// was constructed with `cv <= 1`.
    pub fn sample(&self, rng: &mut impl Rng, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        match *self {
            Distribution::Constant => mean,
            Distribution::Exponential => sample_exp(rng, mean),
            Distribution::HyperExp { cv } => {
                assert!(cv > 1.0, "HyperExp requires cv > 1, got {cv}");
                // Balanced-means two-branch hyperexponential:
                // with prob p use mean m1, else mean m2, chosen so that the
                // overall mean is `mean` and the squared CV is cv^2.
                let c2 = cv * cv;
                let p = 0.5 * (1.0 + ((c2 - 1.0) / (c2 + 1.0)).sqrt());
                let m1 = mean / (2.0 * p);
                let m2 = mean / (2.0 * (1.0 - p));
                if rng.random::<f64>() < p {
                    sample_exp(rng, m1)
                } else {
                    sample_exp(rng, m2)
                }
            }
        }
    }

    /// The squared coefficient of variation of this shape.
    pub fn scv(&self) -> f64 {
        match *self {
            Distribution::Constant => 0.0,
            Distribution::Exponential => 1.0,
            Distribution::HyperExp { cv } => cv * cv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_is_deterministic() {
        let f = RngFactory::new(7);
        let mut a = f.stream(3);
        let mut b = f.stream(3);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        let f = RngFactory::new(7);
        let mut a = f.stream(1);
        let mut b = f.stream(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn exp_mean_converges() {
        let f = RngFactory::new(123);
        let mut rng = f.stream(0);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| sample_exp(&mut rng, 5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean was {mean}");
    }

    #[test]
    fn hyperexp_matches_target_cv() {
        let f = RngFactory::new(99);
        let mut rng = f.stream(0);
        let d = Distribution::HyperExp { cv: 4.0 };
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
        assert!((cv - 4.0).abs() < 0.3, "cv was {cv}");
    }

    #[test]
    fn constant_distribution_is_exact() {
        let f = RngFactory::new(1);
        let mut rng = f.stream(0);
        assert_eq!(Distribution::Constant.sample(&mut rng, 3.25), 3.25);
        assert_eq!(Distribution::Constant.scv(), 0.0);
        assert_eq!(Distribution::Exponential.scv(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn exp_rejects_nonpositive_mean() {
        let f = RngFactory::new(1);
        let mut rng = f.stream(0);
        let _ = sample_exp(&mut rng, 0.0);
    }

    #[test]
    fn splitmix_distributes_bits() {
        // Adjacent inputs should produce wildly different outputs.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10);
    }
}
