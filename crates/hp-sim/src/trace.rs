//! Structured notification-lifecycle tracing.
//!
//! The statistics in [`crate::stats`] summarize a whole run; this module
//! records *what happened when*, so a single p99 notification can be
//! followed from its doorbell write to its service completion. The design
//! constraints, in order:
//!
//! 1. **Determinism.** Emitting a record consumes no RNG draws, schedules
//!    no events, and reads no wall clock; a traced run is bit-identical to
//!    an untraced one (pinned by `tests/observability.rs`).
//! 2. **Zero cost when disabled.** A disabled [`Tracer`] is a single
//!    branch per instrumentation site — no allocation, no formatting.
//! 3. **Bounded memory.** Records land in a fixed-capacity ring buffer;
//!    when full, the *oldest* records are overwritten (the end of a run is
//!    what post-mortems need).
//!
//! Records are typed ([`TraceKind`]) rather than stringly, so sinks can
//! render them as JSONL, Chrome `trace_event` JSON (open the file in
//! `ui.perfetto.dev` or `chrome://tracing`), or anything else without
//! re-parsing. [`chrome_trace`] produces the Chrome/Perfetto export,
//! pairing `Enqueue`/`ServiceDone` records into per-item async lifecycle
//! spans and `SpanBegin`/`SpanEnd` records into phase spans.

use crate::time::SimTime;

/// What happened: one step of the notification lifecycle, a fault-plane
/// action, or a phase-span edge.
///
/// The lifecycle order for a single work item is: `Enqueue` →
/// `DoorbellWrite` → `GetmSnoop` → (`ReadyInsert` on a monitoring-set
/// hit) → `Wake` → `Dequeue` → `ServiceDone`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A work item entered an I/O queue.
    Enqueue {
        /// Destination queue.
        queue: u32,
        /// Monotonic item id.
        item: u64,
    },
    /// The producer rang the queue's doorbell (coherence-visible store).
    DoorbellWrite {
        /// The queue whose doorbell was written.
        queue: u32,
    },
    /// The monitoring set observed the doorbell's GetM snoop.
    GetmSnoop {
        /// Device group whose monitoring set saw the snoop.
        group: u32,
        /// Whether an armed entry matched (miss = unmonitored line or
        /// already-activated entry).
        hit: bool,
    },
    /// A QID was activated into the ready set.
    ReadyInsert {
        /// The activated queue.
        queue: u32,
    },
    /// A halted core resumed (wake-up delivered).
    Wake {
        /// The woken core.
        core: u32,
    },
    /// A core halted in the QWAIT (or interrupt-idle) path.
    Halt {
        /// The halting core.
        core: u32,
    },
    /// A halted core's QWAIT re-poll timeout expired.
    WakeTimeout {
        /// The core whose timeout fired.
        core: u32,
    },
    /// A core dequeued a work item.
    Dequeue {
        /// Source queue.
        queue: u32,
        /// Consuming core.
        core: u32,
        /// The item.
        item: u64,
    },
    /// Transport processing of an item finished (tenant notified).
    ServiceDone {
        /// Source queue.
        queue: u32,
        /// Serving core.
        core: u32,
        /// The item.
        item: u64,
    },
    /// Fault plane: a doorbell notification was dropped in flight.
    FaultDropped {
        /// The queue whose notification was lost.
        queue: u32,
    },
    /// Fault plane: a doorbell notification was delayed in flight.
    FaultDelayed {
        /// The queue whose notification was delayed.
        queue: u32,
        /// Delay applied, cycles.
        cycles: u64,
    },
    /// Fault plane: a queue's monitoring-set entry was evicted.
    FaultEvicted {
        /// The evicted queue.
        queue: u32,
    },
    /// Fault plane: a spurious activation was forced (false sharing).
    FaultSpurious {
        /// The spuriously-activated queue.
        queue: u32,
    },
    /// Resilience: a timeout sweep found missed work and recovered it.
    Recovery {
        /// The recovering core.
        core: u32,
    },
    /// The no-progress watchdog detected a stall.
    Stall,
    /// A named phase span opened (see [`Tracer::begin_span`]).
    SpanBegin {
        /// Span id (pairs with the matching `SpanEnd`).
        id: u64,
        /// Static span name.
        name: &'static str,
        /// Nesting depth at open (0 = outermost).
        depth: u32,
    },
    /// A named phase span closed.
    SpanEnd {
        /// Span id (pairs with the matching `SpanBegin`).
        id: u64,
        /// Static span name.
        name: &'static str,
        /// Nesting depth at open (0 = outermost).
        depth: u32,
    },
}

impl TraceKind {
    /// Short stable name for sinks.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Enqueue { .. } => "enqueue",
            TraceKind::DoorbellWrite { .. } => "doorbell-write",
            TraceKind::GetmSnoop { .. } => "getm-snoop",
            TraceKind::ReadyInsert { .. } => "ready-insert",
            TraceKind::Wake { .. } => "wake",
            TraceKind::Halt { .. } => "halt",
            TraceKind::WakeTimeout { .. } => "qwait-timeout",
            TraceKind::Dequeue { .. } => "dequeue",
            TraceKind::ServiceDone { .. } => "service-done",
            TraceKind::FaultDropped { .. } => "fault-dropped",
            TraceKind::FaultDelayed { .. } => "fault-delayed",
            TraceKind::FaultEvicted { .. } => "fault-evicted",
            TraceKind::FaultSpurious { .. } => "fault-spurious",
            TraceKind::Recovery { .. } => "recovery",
            TraceKind::Stall => "stall",
            TraceKind::SpanBegin { .. } => "span-begin",
            TraceKind::SpanEnd { .. } => "span-end",
        }
    }
}

/// One trace record: a typed event with its cycle timestamp and a global
/// emission sequence number (total order even within one cycle).
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// When the event happened in simulated time.
    pub at: SimTime,
    /// Global emission order (monotonic across the whole run).
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
}

/// Handle for an open phase span, returned by [`Tracer::begin_span`] and
/// consumed by [`Tracer::end_span`].
///
/// RAII-style in the sense that the handle is affine: the type system
/// makes it hard to close a span twice, and closing requires the handle,
/// so every `SpanEnd` pairs with exactly one `SpanBegin`. (A `Drop`-based
/// guard cannot work here: in a discrete-event simulation the close
/// *timestamp* must be supplied by the model, not the destructor.)
#[derive(Debug)]
#[must_use = "end the span with Tracer::end_span to record its close"]
pub struct SpanId {
    id: u64,
    name: &'static str,
    depth: u32,
}

impl SpanId {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A bounded ring buffer of [`TraceRecord`]s.
///
/// # Examples
///
/// ```
/// use hp_sim::time::SimTime;
/// use hp_sim::trace::{TraceKind, Tracer};
///
/// let mut t = Tracer::with_capacity(4);
/// t.emit(SimTime(10), TraceKind::Enqueue { queue: 3, item: 0 });
/// let span = t.begin_span(SimTime(10), "measure");
/// t.end_span(SimTime(90), span);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.records()[0].kind.name(), "enqueue");
///
/// // Disabled tracers emit nothing, at near-zero cost.
/// let mut off = Tracer::disabled();
/// off.emit(SimTime(1), TraceKind::Stall);
/// assert_eq!(off.len(), 0);
/// ```
#[derive(Debug)]
pub struct Tracer {
    buf: Vec<TraceRecord>,
    /// Next write position when the ring has wrapped.
    head: usize,
    cap: usize,
    enabled: bool,
    seq: u64,
    dropped: u64,
    next_span: u64,
    depth: u32,
}

impl Tracer {
    /// A tracer that records nothing (the default for untraced runs).
    pub fn disabled() -> Self {
        Tracer {
            buf: Vec::new(),
            head: 0,
            cap: 0,
            enabled: false,
            seq: 0,
            dropped: 0,
            next_span: 0,
            depth: 0,
        }
    }

    /// An enabled tracer keeping the newest `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use [`Tracer::disabled`]).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity tracer cannot hold records");
        Tracer {
            buf: Vec::with_capacity(capacity.min(4096)),
            head: 0,
            cap: capacity,
            enabled: true,
            seq: 0,
            dropped: 0,
            next_span: 0,
            depth: 0,
        }
    }

    /// Whether records are being kept.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `kind` at time `at`. A no-op on a disabled tracer.
    #[inline]
    pub fn emit(&mut self, at: SimTime, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        self.push(TraceRecord {
            at,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
    }

    fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Opens a named phase span at `at`. Close it with
    /// [`Tracer::end_span`]. Spans may nest; the recorded depth reflects
    /// the nesting at open time. On a disabled tracer this still returns a
    /// handle (so call sites need no branches) but records nothing.
    pub fn begin_span(&mut self, at: SimTime, name: &'static str) -> SpanId {
        let id = self.next_span;
        self.next_span += 1;
        let depth = self.depth;
        self.depth += 1;
        self.emit(at, TraceKind::SpanBegin { id, name, depth });
        SpanId { id, name, depth }
    }

    /// Closes a span opened by [`Tracer::begin_span`] at `at`.
    pub fn end_span(&mut self, at: SimTime, span: SpanId) {
        self.depth = self.depth.saturating_sub(1);
        self.emit(
            at,
            TraceKind::SpanEnd {
                id: span.id,
                name: span.name,
                depth: span.depth,
            },
        );
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no records are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever emitted (including overwritten ones).
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Records overwritten by ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held records in emission order (oldest surviving first).
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

fn chrome_args(w: &mut hp_bytes::json::JsonWriter, kind: &TraceKind) {
    w.key("args");
    w.begin_object();
    match *kind {
        TraceKind::Enqueue { queue, item }
        | TraceKind::Dequeue { queue, item, .. }
        | TraceKind::ServiceDone { queue, item, .. } => {
            w.field_u64("queue", queue as u64);
            w.field_u64("item", item);
        }
        TraceKind::DoorbellWrite { queue }
        | TraceKind::ReadyInsert { queue }
        | TraceKind::FaultDropped { queue }
        | TraceKind::FaultEvicted { queue }
        | TraceKind::FaultSpurious { queue } => {
            w.field_u64("queue", queue as u64);
        }
        TraceKind::FaultDelayed { queue, cycles } => {
            w.field_u64("queue", queue as u64);
            w.field_u64("delay_cycles", cycles);
        }
        TraceKind::GetmSnoop { group, hit } => {
            w.field_u64("group", group as u64);
            w.field_bool("hit", hit);
        }
        TraceKind::Wake { core }
        | TraceKind::Halt { core }
        | TraceKind::WakeTimeout { core }
        | TraceKind::Recovery { core } => {
            w.field_u64("core", core as u64);
        }
        TraceKind::SpanBegin { depth, .. } | TraceKind::SpanEnd { depth, .. } => {
            w.field_u64("depth", depth as u64);
        }
        TraceKind::Stall => {}
    }
    w.end_object();
}

/// The virtual thread a record renders on in the Chrome trace: cores,
/// queues, and device groups get separate tracks.
fn chrome_tid(kind: &TraceKind) -> (u64, &'static str) {
    match *kind {
        TraceKind::Wake { core }
        | TraceKind::Halt { core }
        | TraceKind::WakeTimeout { core }
        | TraceKind::Recovery { core } => (core as u64, "core"),
        TraceKind::Dequeue { core, .. } | TraceKind::ServiceDone { core, .. } => {
            (core as u64, "core")
        }
        TraceKind::Enqueue { queue, .. }
        | TraceKind::DoorbellWrite { queue }
        | TraceKind::ReadyInsert { queue }
        | TraceKind::FaultDropped { queue }
        | TraceKind::FaultDelayed { queue, .. }
        | TraceKind::FaultEvicted { queue }
        | TraceKind::FaultSpurious { queue } => (1000 + queue as u64, "queue"),
        TraceKind::GetmSnoop { group, .. } => (2000 + group as u64, "device"),
        TraceKind::Stall | TraceKind::SpanBegin { .. } | TraceKind::SpanEnd { .. } => (0, "run"),
    }
}

/// Renders `records` as Chrome `trace_event` JSON (the JSON Array Format
/// wrapped in an object), loadable in `ui.perfetto.dev` and
/// `chrome://tracing`.
///
/// * Every record becomes an instant event (`ph: "i"`) on a per-core /
///   per-queue / per-device virtual thread.
/// * `Enqueue` / `ServiceDone` pairs additionally become nestable async
///   span edges (`ph: "b"` / `"e"`, category `lifecycle`, id = item), so
///   each item's full enqueue→service latency renders as one span.
/// * `SpanBegin` / `SpanEnd` become async span edges in category `phase`.
///
/// `cycles_per_us` converts cycle timestamps to the microsecond `ts` unit
/// the format requires (2000.0 for the default 2 GHz clock).
pub fn chrome_trace(records: &[TraceRecord], cycles_per_us: f64) -> String {
    chrome_trace_with_counters(records, &[], cycles_per_us)
}

/// One sample for the Perfetto counter tracks: instantaneous engine
/// state at a known instant (the windowed-metrics boundary snapshots are
/// the natural source).
#[derive(Debug, Clone, Copy)]
pub struct CounterPoint {
    /// Sample instant.
    pub at: SimTime,
    /// Total queue backlog (items) at the instant.
    pub backlog: u64,
    /// Simulator event-queue depth at the instant.
    pub event_queue_depth: u64,
    /// DP cores halted at the instant.
    pub cores_halted: u64,
}

/// [`chrome_trace`] plus Perfetto counter tracks (`ph: "C"`): one
/// `backlog` / `event queue` / `halted cores` sample per
/// [`CounterPoint`], rendered as stacked counter charts above the span
/// tracks in `ui.perfetto.dev`.
pub fn chrome_trace_with_counters(
    records: &[TraceRecord],
    counters: &[CounterPoint],
    cycles_per_us: f64,
) -> String {
    let mut recs: Vec<&TraceRecord> = records.iter().collect();
    recs.sort_by_key(|r| (r.at, r.seq));

    let mut w = hp_bytes::json::JsonWriter::with_capacity(256 * records.len().max(1));
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();

    // Thread-name metadata for every track in use.
    let mut tids: Vec<(u64, &'static str)> = recs.iter().map(|r| chrome_tid(&r.kind)).collect();
    tids.sort_unstable();
    tids.dedup();
    for (tid, label) in &tids {
        w.begin_object();
        w.field_str("name", "thread_name");
        w.field_str("ph", "M");
        w.field_u64("pid", 0);
        w.field_u64("tid", *tid);
        w.key("args");
        w.begin_object();
        let pretty = match *label {
            "core" => format!("core {tid}"),
            "queue" => format!("queue {}", tid - 1000),
            "device" => format!("device {}", tid - 2000),
            _ => "run".to_string(),
        };
        w.field_str("name", &pretty);
        w.end_object();
        w.end_object();
    }

    // Counter tracks: one event per sample per counter, on the run
    // track. Perfetto renders each distinct (name, pid) as its own
    // stacked counter chart.
    for p in counters {
        let ts = p.at.since_start().count() as f64 / cycles_per_us;
        for (name, value) in [
            ("backlog", p.backlog),
            ("event queue", p.event_queue_depth),
            ("halted cores", p.cores_halted),
        ] {
            w.begin_object();
            w.field_str("name", name);
            w.field_str("ph", "C");
            w.field_f64("ts", ts);
            w.field_u64("pid", 0);
            w.field_u64("tid", 0);
            w.key("args");
            w.begin_object();
            w.field_u64(name, value);
            w.end_object();
            w.end_object();
        }
    }

    for r in recs {
        let ts = r.at.since_start().count() as f64 / cycles_per_us;
        let (tid, _) = chrome_tid(&r.kind);

        // The instant event.
        w.begin_object();
        w.field_str("name", r.kind.name());
        w.field_str("ph", "i");
        w.field_str("s", "t");
        w.field_f64("ts", ts);
        w.field_u64("pid", 0);
        w.field_u64("tid", tid);
        chrome_args(&mut w, &r.kind);
        w.end_object();

        // Async span edges for item lifecycles and phase spans.
        let edge: Option<(&str, &str, String, u64)> = match r.kind {
            TraceKind::Enqueue { item, .. } => Some(("b", "lifecycle", "item".to_string(), item)),
            TraceKind::ServiceDone { item, .. } => {
                Some(("e", "lifecycle", "item".to_string(), item))
            }
            TraceKind::SpanBegin { id, name, .. } => Some(("b", "phase", name.to_string(), id)),
            TraceKind::SpanEnd { id, name, .. } => Some(("e", "phase", name.to_string(), id)),
            _ => None,
        };
        if let Some((ph, cat, name, id)) = edge {
            w.begin_object();
            w.field_str("name", &name);
            w.field_str("cat", cat);
            w.field_str("ph", ph);
            w.key("id");
            w.u64(id);
            w.field_f64("ts", ts);
            w.field_u64("pid", 0);
            w.field_u64("tid", tid);
            w.end_object();
        }
    }
    w.end_array();
    w.field_str("displayTimeUnit", "ns");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_emits_nothing() {
        let mut t = Tracer::disabled();
        t.emit(SimTime(1), TraceKind::Stall);
        let s = t.begin_span(SimTime(1), "x");
        t.end_span(SimTime(2), s);
        assert!(t.is_empty());
        assert_eq!(t.emitted(), 0);
        assert_eq!(t.dropped(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn ring_wraparound_keeps_newest_records() {
        let mut t = Tracer::with_capacity(4);
        for i in 0..10u64 {
            t.emit(SimTime(i), TraceKind::Enqueue { queue: 0, item: i });
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.emitted(), 10);
        assert_eq!(t.dropped(), 6);
        let items: Vec<u64> = t
            .records()
            .iter()
            .map(|r| match r.kind {
                TraceKind::Enqueue { item, .. } => item,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(
            items,
            vec![6, 7, 8, 9],
            "oldest overwritten, newest kept, in order"
        );
    }

    #[test]
    fn span_nesting_records_depths() {
        let mut t = Tracer::with_capacity(16);
        let outer = t.begin_span(SimTime(0), "outer");
        let inner = t.begin_span(SimTime(5), "inner");
        t.end_span(SimTime(7), inner);
        t.end_span(SimTime(9), outer);
        let recs = t.records();
        assert_eq!(recs.len(), 4);
        match (recs[0].kind, recs[1].kind, recs[2].kind, recs[3].kind) {
            (
                TraceKind::SpanBegin {
                    depth: 0,
                    name: "outer",
                    id: oid,
                },
                TraceKind::SpanBegin {
                    depth: 1,
                    name: "inner",
                    id: iid,
                },
                TraceKind::SpanEnd {
                    depth: 1,
                    name: "inner",
                    id: iid2,
                },
                TraceKind::SpanEnd {
                    depth: 0,
                    name: "outer",
                    id: oid2,
                },
            ) => {
                assert_eq!(oid, oid2);
                assert_eq!(iid, iid2);
                assert_ne!(oid, iid);
            }
            other => panic!("unexpected span records: {other:?}"),
        }
    }

    #[test]
    fn chrome_export_contains_lifecycle_span_pair() {
        let mut t = Tracer::with_capacity(16);
        t.emit(SimTime(100), TraceKind::Enqueue { queue: 2, item: 7 });
        t.emit(SimTime(120), TraceKind::DoorbellWrite { queue: 2 });
        t.emit(
            SimTime(300),
            TraceKind::Dequeue {
                queue: 2,
                core: 0,
                item: 7,
            },
        );
        t.emit(
            SimTime(900),
            TraceKind::ServiceDone {
                queue: 2,
                core: 0,
                item: 7,
            },
        );
        let json = chrome_trace(&t.records(), 2000.0);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(
            json.contains("\"ph\":\"b\""),
            "lifecycle begin edge missing: {json}"
        );
        assert!(
            json.contains("\"ph\":\"e\""),
            "lifecycle end edge missing: {json}"
        );
        assert!(json.contains("\"cat\":\"lifecycle\""));
        assert!(json.contains("\"enqueue\"") && json.contains("\"service-done\""));
        // 100 cycles at 2 GHz = 0.05 us.
        assert!(
            json.contains("\"ts\":0.05"),
            "cycle→us conversion wrong: {json}"
        );
    }

    #[test]
    fn chrome_export_orders_out_of_order_records_by_time() {
        let mut t = Tracer::with_capacity(8);
        // The engine may emit completion records timestamped in the
        // future; the exporter must sort.
        t.emit(
            SimTime(900),
            TraceKind::ServiceDone {
                queue: 0,
                core: 0,
                item: 1,
            },
        );
        t.emit(SimTime(100), TraceKind::Enqueue { queue: 0, item: 2 });
        let json = chrome_trace(&t.records(), 2000.0);
        let enq = json.find("\"enqueue\"").unwrap();
        let done = json.find("\"service-done\"").unwrap();
        assert!(enq < done, "records must be time-sorted in the export");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_is_rejected() {
        let _ = Tracer::with_capacity(0);
    }

    #[test]
    fn chrome_export_renders_counter_tracks() {
        let mut t = Tracer::with_capacity(8);
        t.emit(SimTime(100), TraceKind::Enqueue { queue: 0, item: 1 });
        let points = [
            CounterPoint {
                at: SimTime(200),
                backlog: 3,
                event_queue_depth: 5,
                cores_halted: 1,
            },
            CounterPoint {
                at: SimTime(400),
                backlog: 0,
                event_queue_depth: 2,
                cores_halted: 4,
            },
        ];
        let json = chrome_trace_with_counters(&t.records(), &points, 2000.0);
        assert_eq!(
            json.matches("\"ph\":\"C\"").count(),
            6,
            "3 tracks x 2 points"
        );
        assert!(json.contains("\"backlog\":3"));
        assert!(json.contains("\"event queue\":5"));
        assert!(json.contains("\"halted cores\":4"));
        // Plain chrome_trace stays counter-free.
        assert!(!chrome_trace(&t.records(), 2000.0).contains("\"ph\":\"C\""));
    }
}
