#!/usr/bin/env bash
# Parallel-engine benchmark: worker scaling, kernel-event parity, and the
# rendezvous-count comparison (lookahead vs fixed windows), plus the
# rendezvous microbench. Writes results/par_bench.json.
# Usage: scripts/bench_par.sh [--quick]
#   --quick  reduced run length for a fast smoke pass
set -euo pipefail
cd "$(dirname "$0")/.."

quick=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick="--quick" ;;
    *) echo "unknown argument: $arg (expected --quick)" >&2; exit 2 ;;
  esac
done

mkdir -p results
cargo build --release -p hp-bench --bins

echo "== par-bench (worker scaling, kernel-event ratio, rendezvous counts) =="
# shellcheck disable=SC2086  # word-splitting of the flag string is intended
./target/release/trace $quick --par-bench results/par_bench.json

echo
echo "== kernel microbenches (includes rendezvous_cycle) =="
# shellcheck disable=SC2086
cargo bench -p hp-bench --bench kernels -- $quick

echo
echo "Parallel-engine benchmark written to results/par_bench.json"
