#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/.
# Usage: scripts/run_all_figures.sh [--quick] [--json]
#   --quick  reduced sweeps for a fast smoke run
#   --json   also append each table row to results/<bin>.jsonl and write
#            the trace/metrics artifacts from the trace binary
set -euo pipefail
cd "$(dirname "$0")/.."

quick=""
json=""
for arg in "$@"; do
  case "$arg" in
    --quick) quick="--quick" ;;
    --json) json="--json" ;;
    *) echo "unknown argument: $arg (expected --quick and/or --json)" >&2; exit 2 ;;
  esac
done

mkdir -p results
cargo build --release -p hp-bench --bins

if [ -n "$json" ]; then
  # JSONL sinks append per table; clear stale rows from previous runs.
  rm -f results/*.jsonl
fi

for bin in table1 hwcost validate notifiers fig3 fig8 fig9 fig10 fig11 fig12 fig13 qos numa ablate summary; do
  echo "== $bin =="
  ./target/release/$bin $quick $json --csv | tee "results/$bin.txt"
done

if [ -n "$json" ]; then
  echo "== trace =="
  ./target/release/trace $quick \
    --trace results/trace.json \
    --metrics results/metrics.jsonl \
    --bench results/bench_trace.json | tee results/trace.txt
fi

echo "All figure outputs written to results/"
