#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/.
# Usage: scripts/run_all_figures.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."
mode="${1:-}"
mkdir -p results
cargo build --release -p hp-bench --bins
for bin in table1 hwcost validate notifiers fig3 fig8 fig9 fig10 fig11 fig12 fig13 qos numa ablate summary; do
  echo "== $bin =="
  ./target/release/$bin $mode --csv | tee "results/$bin.txt"
done
echo "All figure outputs written to results/"
