#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/.
# Usage: scripts/run_all_figures.sh [--quick] [--json] [--threads N]
#   --quick      reduced sweeps for a fast smoke run
#   --json       also append each table row to results/<bin>.jsonl and write
#                the trace/metrics artifacts from the trace binary
#   --threads N  worker threads per binary (default: all cores; results are
#                byte-identical for any N, --threads 1 runs fully serial)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=""
json=""
threads=""
expect_threads=""
for arg in "$@"; do
  if [ -n "$expect_threads" ]; then
    case "$arg" in
      ''|*[!0-9]*|0)
        echo "--threads expects a positive integer, got: $arg" >&2; exit 2 ;;
      *) threads="--threads $arg"; expect_threads="" ;;
    esac
    continue
  fi
  case "$arg" in
    --quick) quick="--quick" ;;
    --json) json="--json" ;;
    --threads) expect_threads=1 ;;
    *) echo "unknown argument: $arg (expected --quick, --json, and/or --threads N)" >&2; exit 2 ;;
  esac
done
if [ -n "$expect_threads" ]; then
  echo "--threads expects a positive integer" >&2; exit 2
fi

mkdir -p results
cargo build --release -p hp-bench --bins

if [ -n "$json" ]; then
  # JSONL sinks append per table; clear stale rows from previous runs.
  rm -f results/*.jsonl
fi

for bin in table1 hwcost validate notifiers fig3 fig8 fig9 fig10 fig11 fig12 fig13 qos numa ablate summary; do
  echo "== $bin =="
  # shellcheck disable=SC2086  # word-splitting of the flag strings is intended
  ./target/release/$bin $quick $json $threads --csv | tee "results/$bin.txt"
done

if [ -n "$json" ]; then
  echo "== trace =="
  # shellcheck disable=SC2086
  ./target/release/trace $quick $threads \
    --trace results/trace.json \
    --metrics results/metrics.jsonl \
    --attrib results/attrib.json \
    --bench results/bench_trace.json | tee results/trace.txt
fi

echo "All figure outputs written to results/"
