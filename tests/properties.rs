//! Randomised property tests of the core data structures and invariants,
//! spanning crates. Each property runs many cases drawn from a fixed-seed
//! [`hp_rand`] stream, so the suite is fully deterministic (no external
//! property-testing dependency, no flaky shrink state).

use hp_rand::rngs::SmallRng;
use hp_rand::{Rng, SeedableRng};
use hyperplane::device::monitoring::MonitoringSet;
use hyperplane::device::ready_set::{PpaKind, ReadySet, ServicePolicy};
use hyperplane::mem::system::{MemSystem, MemSystemConfig};
use hyperplane::mem::types::{AccessKind, Addr, CoreId, HitLevel};
use hyperplane::prelude::*;
use hyperplane::queues::ring::MpmcRing;
use hyperplane::sim::stats::Histogram;
use hyperplane::workloads::aes::Aes256;
use hyperplane::workloads::raid::PqRaid;
use hyperplane::workloads::reed_solomon::ReedSolomon;
use std::collections::{HashMap, HashSet};

/// The Cuckoo monitoring set behaves exactly like a map from line to
/// (qid, armed) under any operation sequence that fits.
#[test]
fn monitoring_set_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E501);
    for case in 0..200 {
        let mut ms = MonitoringSet::new(256);
        let mut model: HashMap<u32, bool> = HashMap::new(); // qid -> armed
        let n_ops = rng.random_range(1..200usize);
        for _ in 0..n_ops {
            let q = rng.random_range(0..64u32);
            let op = rng.random_range(0..4u8);
            let line = hyperplane::mem::types::LineAddr(1000 + q as u64);
            match op {
                0 => {
                    // insert if absent
                    if !model.contains_key(&q) && ms.insert(QueueId(q), line).is_ok() {
                        model.insert(q, true);
                    }
                }
                1 => {
                    // snoop
                    let expect = model.get(&q).copied() == Some(true);
                    let got = ms.snoop(line).is_some();
                    assert_eq!(got, expect, "case {case}: snoop mismatch for q{q}");
                    if expect {
                        model.insert(q, false);
                    }
                }
                2 => {
                    // arm
                    let present = model.contains_key(&q);
                    assert_eq!(ms.arm(QueueId(q)), present);
                    if present {
                        model.insert(q, true);
                    }
                }
                _ => {
                    // remove
                    let present = model.remove(&q).is_some();
                    assert_eq!(ms.remove(QueueId(q)).is_some(), present);
                }
            }
        }
        assert_eq!(ms.occupancy(), model.len());
    }
}

/// Ripple and Brent–Kung PPAs agree on arbitrary ready sets and policies
/// over long grant sequences.
#[test]
fn ppa_implementations_equivalent() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E502);
    for _case in 0..150 {
        let n = rng.random_range(1..200usize);
        let mut a = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::Ripple);
        let mut b = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::BrentKung);
        let n_acts = rng.random_range(0..300usize);
        for _ in 0..n_acts {
            let q = QueueId(rng.random_range(0..200u32) % n as u32);
            a.activate(q);
            b.activate(q);
            if rng.random_range(0..3u8) == 0 {
                assert_eq!(a.select(), b.select());
            }
        }
        loop {
            let (x, y) = (a.select(), b.select());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}

/// Round-robin never grants the same queue twice while others are
/// continuously backlogged (fairness / starvation freedom).
#[test]
fn round_robin_starvation_free() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E503);
    for _case in 0..100 {
        let n = rng.random_range(2..64usize);
        let rounds = rng.random_range(1..20usize);
        let mut rs = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::BrentKung);
        let mut counts = vec![0u32; n];
        for _ in 0..rounds * n {
            for q in 0..n {
                rs.activate(QueueId(q as u32));
            }
            let q = rs.select().expect("all backlogged");
            counts[q.0 as usize] += 1;
        }
        let min = counts.iter().min().copied().expect("nonempty");
        let max = counts.iter().max().copied().expect("nonempty");
        assert!(max - min <= 1, "unfair grants: {counts:?}");
    }
}

/// Reed–Solomon reconstructs any erasure pattern with <= m losses.
#[test]
fn reed_solomon_recovers_any_tolerable_erasure() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E504);
    for _case in 0..60 {
        let k = rng.random_range(2..8usize);
        let m = rng.random_range(1..4usize);
        let len = rng.random_range(1..128usize);
        let seed: u64 = rng.random();
        let rs = ReedSolomon::new(k, m).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((seed as usize + i * 31 + j * 7) % 256) as u8)
                    .collect()
            })
            .collect();
        let parity = rs.encode(&data).expect("well-formed");
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        let mut lost = HashSet::new();
        let n_lost = rng.random_range(1..4usize).min(m);
        for _ in 0..n_lost {
            lost.insert(rng.random::<u16>() as usize % (k + m));
        }
        for &l in &lost {
            shards[l] = None;
        }
        let rec = rs.reconstruct(&shards).expect("within tolerance");
        assert_eq!(rec, data);
    }
}

/// RAID P+Q rebuilds any double failure bit-exactly.
#[test]
fn raid_pq_rebuilds_any_pair() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E505);
    for _case in 0..60 {
        let n = rng.random_range(2..12usize);
        let len = rng.random_range(1..96usize);
        let seed: u64 = rng.random();
        let raid = PqRaid::new(n).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| ((seed as usize + i * 131 + j * 3) % 256) as u8)
                    .collect()
            })
            .collect();
        let (p, q) = raid.compute_pq(&data).expect("well-formed");
        let x = rng.random::<u8>() as usize % n;
        let y = rng.random::<u8>() as usize % n;
        if x != y {
            let (dx, dy) = raid.recover_two(&data, x, y, &p, &q).expect("two failures");
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            assert_eq!(dx, data[lo].clone());
            assert_eq!(dy, data[hi].clone());
        } else {
            let d = raid.recover_one(&data, x, &p).expect("single failure");
            assert_eq!(d, data[x].clone());
        }
    }
}

/// AES-256-CBC decrypt(encrypt(x)) == x for arbitrary block-aligned
/// payloads, keys, and IVs.
#[test]
fn aes_cbc_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E506);
    for _case in 0..40 {
        let mut key = [0u8; 32];
        let mut iv = [0u8; 16];
        for b in key.iter_mut() {
            *b = rng.random();
        }
        for b in iv.iter_mut() {
            *b = rng.random();
        }
        let blocks = rng.random_range(1..16usize);
        let seed: u64 = rng.random();
        let aes = Aes256::new(&key);
        let original: Vec<u8> = (0..blocks * 16)
            .map(|i| ((seed as usize).wrapping_mul(31).wrapping_add(i * 7) % 256) as u8)
            .collect();
        let mut data = original.clone();
        aes.encrypt_cbc(&iv, &mut data).expect("aligned");
        assert_ne!(&data, &original);
        aes.decrypt_cbc(&iv, &mut data).expect("aligned");
        assert_eq!(data, original);
    }
}

/// Histogram percentiles are within the documented relative-error bound of
/// exact order statistics.
#[test]
fn histogram_percentile_bounded_error() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E507);
    for _case in 0..100 {
        let n = rng.random_range(10..500usize);
        let values: Vec<u64> = (0..n).map(|_| rng.random_range(1..1_000_000u64)).collect();
        let p = 1.0 + rng.random::<f64>() * 99.0;
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
        let exact = sorted[rank] as f64;
        let approx = h.percentile(p).expect("non-empty histogram") as f64;
        assert!(
            (approx - exact).abs() / exact < 0.05,
            "p{p}: approx {approx} exact {exact}"
        );
    }
}

/// The MPMC ring delivers every pushed value exactly once, in FIFO order
/// for a single producer/consumer pair.
#[test]
fn ring_fifo_exactly_once() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E508);
    for _case in 0..100 {
        let n = rng.random_range(0..200usize);
        let values: Vec<u64> = (0..n).map(|_| rng.random()).collect();
        let (tx, rx) = MpmcRing::with_capacity(64);
        let mut popped = Vec::new();
        for chunk in values.chunks(32) {
            for &v in chunk {
                tx.push(v).expect("chunk fits");
            }
            while let Some(v) = rx.pop() {
                popped.push(v);
            }
        }
        assert_eq!(popped, values);
    }
}

/// Coherence safety: after any access sequence, a store by one core
/// invalidates all other cores' copies (no stale hits).
#[test]
fn mesi_no_stale_copies() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E509);
    for _case in 0..100 {
        let mut mem = MemSystem::new(MemSystemConfig::cmp(4));
        let mut last_writer: HashMap<u64, usize> = HashMap::new();
        let n_ops = rng.random_range(1..200usize);
        for _ in 0..n_ops {
            let core = rng.random_range(0..4usize);
            let lineno = rng.random_range(0..8u64);
            let is_store = rng.random::<bool>();
            let addr = Addr(0x10_000 + lineno * 64);
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let r = mem.access(CoreId(core), addr, kind);
            if is_store {
                last_writer.insert(lineno, core);
            } else if let Some(&w) = last_writer.get(&lineno) {
                // A load by a non-writer immediately after a store cannot
                // be a (stale) L1 hit unless this core reloaded since.
                let _ = w;
                assert!(matches!(
                    r.level,
                    HitLevel::L1 | HitLevel::Llc | HitLevel::RemoteL1 | HitLevel::Memory
                ));
            }
        }
    }
}

/// Deterministic supplementary check: a store by core A makes core B's
/// next load miss (explicit staleness test, no sampling noise).
#[test]
fn store_invalidates_remote_copy() {
    let mut mem = MemSystem::new(MemSystemConfig::cmp(2));
    let addr = Addr(0x4_0000);
    mem.access(CoreId(1), addr, AccessKind::Load); // B caches the line
    mem.access(CoreId(0), addr, AccessKind::Store); // A takes ownership
    let r = mem.access(CoreId(1), addr, AccessKind::Load);
    assert_ne!(r.level, HitLevel::L1, "B must not hit a stale copy");
}
