//! Randomised property tests of the core data structures and invariants,
//! spanning crates. Each property runs many cases drawn from a fixed-seed
//! [`hp_rand`] stream, so the suite is fully deterministic (no external
//! property-testing dependency, no flaky shrink state).

use hp_rand::rngs::SmallRng;
use hp_rand::{Rng, SeedableRng};
use hyperplane::device::monitoring::MonitoringSet;
use hyperplane::device::ready_set::{PpaKind, ReadySet, ServicePolicy};
use hyperplane::mem::system::{MemSystem, MemSystemConfig};
use hyperplane::mem::types::{AccessKind, Addr, CoreId, HitLevel};
use hyperplane::prelude::*;
use hyperplane::queues::ring::MpmcRing;
use hyperplane::sim::stats::Histogram;
use hyperplane::workloads::aes::Aes256;
use hyperplane::workloads::raid::PqRaid;
use hyperplane::workloads::reed_solomon::ReedSolomon;
use std::collections::{HashMap, HashSet};

/// The Cuckoo monitoring set behaves exactly like a map from line to
/// (qid, armed) under any operation sequence that fits.
#[test]
fn monitoring_set_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E501);
    for case in 0..200 {
        let mut ms = MonitoringSet::new(256);
        let mut model: HashMap<u32, bool> = HashMap::new(); // qid -> armed
        let n_ops = rng.random_range(1..200usize);
        for _ in 0..n_ops {
            let q = rng.random_range(0..64u32);
            let op = rng.random_range(0..4u8);
            let line = hyperplane::mem::types::LineAddr(1000 + q as u64);
            match op {
                0 => {
                    // insert if absent
                    if !model.contains_key(&q) && ms.insert(QueueId(q), line).is_ok() {
                        model.insert(q, true);
                    }
                }
                1 => {
                    // snoop
                    let expect = model.get(&q).copied() == Some(true);
                    let got = ms.snoop(line).is_some();
                    assert_eq!(got, expect, "case {case}: snoop mismatch for q{q}");
                    if expect {
                        model.insert(q, false);
                    }
                }
                2 => {
                    // arm
                    let present = model.contains_key(&q);
                    assert_eq!(ms.arm(QueueId(q)), present);
                    if present {
                        model.insert(q, true);
                    }
                }
                _ => {
                    // remove
                    let present = model.remove(&q).is_some();
                    assert_eq!(ms.remove(QueueId(q)).is_some(), present);
                }
            }
        }
        assert_eq!(ms.occupancy(), model.len());
    }
}

/// Ripple and Brent–Kung PPAs agree on arbitrary ready sets and policies
/// over long grant sequences.
#[test]
fn ppa_implementations_equivalent() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E502);
    for _case in 0..150 {
        let n = rng.random_range(1..200usize);
        let mut a = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::Ripple);
        let mut b = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::BrentKung);
        let n_acts = rng.random_range(0..300usize);
        for _ in 0..n_acts {
            let q = QueueId(rng.random_range(0..200u32) % n as u32);
            a.activate(q);
            b.activate(q);
            if rng.random_range(0..3u8) == 0 {
                assert_eq!(a.select(), b.select());
            }
        }
        loop {
            let (x, y) = (a.select(), b.select());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}

/// Round-robin never grants the same queue twice while others are
/// continuously backlogged (fairness / starvation freedom).
#[test]
fn round_robin_starvation_free() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E503);
    for _case in 0..100 {
        let n = rng.random_range(2..64usize);
        let rounds = rng.random_range(1..20usize);
        let mut rs = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::BrentKung);
        let mut counts = vec![0u32; n];
        for _ in 0..rounds * n {
            for q in 0..n {
                rs.activate(QueueId(q as u32));
            }
            let q = rs.select().expect("all backlogged");
            counts[q.0 as usize] += 1;
        }
        let min = counts.iter().min().copied().expect("nonempty");
        let max = counts.iter().max().copied().expect("nonempty");
        assert!(max - min <= 1, "unfair grants: {counts:?}");
    }
}

/// Reed–Solomon reconstructs any erasure pattern with <= m losses.
#[test]
fn reed_solomon_recovers_any_tolerable_erasure() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E504);
    for _case in 0..60 {
        let k = rng.random_range(2..8usize);
        let m = rng.random_range(1..4usize);
        let len = rng.random_range(1..128usize);
        let seed: u64 = rng.random();
        let rs = ReedSolomon::new(k, m).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((seed as usize + i * 31 + j * 7) % 256) as u8)
                    .collect()
            })
            .collect();
        let parity = rs.encode(&data).expect("well-formed");
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        let mut lost = HashSet::new();
        let n_lost = rng.random_range(1..4usize).min(m);
        for _ in 0..n_lost {
            lost.insert(rng.random::<u16>() as usize % (k + m));
        }
        for &l in &lost {
            shards[l] = None;
        }
        let rec = rs.reconstruct(&shards).expect("within tolerance");
        assert_eq!(rec, data);
    }
}

/// RAID P+Q rebuilds any double failure bit-exactly.
#[test]
fn raid_pq_rebuilds_any_pair() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E505);
    for _case in 0..60 {
        let n = rng.random_range(2..12usize);
        let len = rng.random_range(1..96usize);
        let seed: u64 = rng.random();
        let raid = PqRaid::new(n).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| ((seed as usize + i * 131 + j * 3) % 256) as u8)
                    .collect()
            })
            .collect();
        let (p, q) = raid.compute_pq(&data).expect("well-formed");
        let x = rng.random::<u8>() as usize % n;
        let y = rng.random::<u8>() as usize % n;
        if x != y {
            let (dx, dy) = raid.recover_two(&data, x, y, &p, &q).expect("two failures");
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            assert_eq!(dx, data[lo].clone());
            assert_eq!(dy, data[hi].clone());
        } else {
            let d = raid.recover_one(&data, x, &p).expect("single failure");
            assert_eq!(d, data[x].clone());
        }
    }
}

/// AES-256-CBC decrypt(encrypt(x)) == x for arbitrary block-aligned
/// payloads, keys, and IVs.
#[test]
fn aes_cbc_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E506);
    for _case in 0..40 {
        let mut key = [0u8; 32];
        let mut iv = [0u8; 16];
        for b in key.iter_mut() {
            *b = rng.random();
        }
        for b in iv.iter_mut() {
            *b = rng.random();
        }
        let blocks = rng.random_range(1..16usize);
        let seed: u64 = rng.random();
        let aes = Aes256::new(&key);
        let original: Vec<u8> = (0..blocks * 16)
            .map(|i| ((seed as usize).wrapping_mul(31).wrapping_add(i * 7) % 256) as u8)
            .collect();
        let mut data = original.clone();
        aes.encrypt_cbc(&iv, &mut data).expect("aligned");
        assert_ne!(&data, &original);
        aes.decrypt_cbc(&iv, &mut data).expect("aligned");
        assert_eq!(data, original);
    }
}

/// Histogram percentiles are within the documented relative-error bound of
/// exact order statistics.
#[test]
fn histogram_percentile_bounded_error() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E507);
    for _case in 0..100 {
        let n = rng.random_range(10..500usize);
        let values: Vec<u64> = (0..n).map(|_| rng.random_range(1..1_000_000u64)).collect();
        let p = 1.0 + rng.random::<f64>() * 99.0;
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
        let exact = sorted[rank] as f64;
        let approx = h.percentile(p).expect("non-empty histogram") as f64;
        assert!(
            (approx - exact).abs() / exact < 0.05,
            "p{p}: approx {approx} exact {exact}"
        );
    }
}

/// The MPMC ring delivers every pushed value exactly once, in FIFO order
/// for a single producer/consumer pair.
#[test]
fn ring_fifo_exactly_once() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E508);
    for _case in 0..100 {
        let n = rng.random_range(0..200usize);
        let values: Vec<u64> = (0..n).map(|_| rng.random()).collect();
        let (tx, rx) = MpmcRing::with_capacity(64);
        let mut popped = Vec::new();
        for chunk in values.chunks(32) {
            for &v in chunk {
                tx.push(v).expect("chunk fits");
            }
            while let Some(v) = rx.pop() {
                popped.push(v);
            }
        }
        assert_eq!(popped, values);
    }
}

/// Coherence safety: after any access sequence, a store by one core
/// invalidates all other cores' copies (no stale hits).
#[test]
fn mesi_no_stale_copies() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E509);
    for _case in 0..100 {
        let mut mem = MemSystem::new(MemSystemConfig::cmp(4));
        let mut last_writer: HashMap<u64, usize> = HashMap::new();
        let n_ops = rng.random_range(1..200usize);
        for _ in 0..n_ops {
            let core = rng.random_range(0..4usize);
            let lineno = rng.random_range(0..8u64);
            let is_store = rng.random::<bool>();
            let addr = Addr(0x10_000 + lineno * 64);
            let kind = if is_store {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let r = mem.access(CoreId(core), addr, kind);
            if is_store {
                last_writer.insert(lineno, core);
            } else if let Some(&w) = last_writer.get(&lineno) {
                // A load by a non-writer immediately after a store cannot
                // be a (stale) L1 hit unless this core reloaded since.
                let _ = w;
                assert!(matches!(
                    r.level,
                    HitLevel::L1 | HitLevel::Llc | HitLevel::RemoteL1 | HitLevel::Memory
                ));
            }
        }
    }
}

/// The hierarchical summary-pyramid select returns exactly what the flat
/// packed-word circular scan (the pre-hierarchy oracle) computes, at
/// every scale tier from one leaf word to a million QIDs. `rr_next` is
/// mirrored externally: round-robin advances to `granted + 1` after
/// every grant, so the mirrored position feeds the oracle the same
/// priority point the pyramid descends from.
#[test]
fn hierarchical_select_matches_flat_scan_across_scales() {
    let mut rng = SmallRng::seed_from_u64(0xA11C_E50A);
    for &n in &[64usize, 1024, 65_536, 1_048_576] {
        let cases = if n > 100_000 { 3 } else { 15 };
        for _case in 0..cases {
            let mut rs = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::BrentKung);
            let mut pos = 0usize; // external mirror of rr_next
            for _ in 0..400 {
                match rng.random_range(0..6u8) {
                    0..=2 => {
                        // Activate: scattered, or hugging a leaf-word
                        // boundary (the summary set/clear edges).
                        let q = if rng.random::<bool>() {
                            rng.random_range(0..n as u64)
                        } else {
                            let word = rng.random_range(0..n as u64 / 64) * 64;
                            (word + [0, 1, 63][rng.random_range(0..3usize)]).min(n as u64 - 1)
                        };
                        rs.activate(QueueId(q as u32));
                    }
                    3 => rs.disable(QueueId(rng.random_range(0..n as u64) as u32)),
                    4 => rs.enable(QueueId(rng.random_range(0..n as u64) as u32)),
                    _ => {
                        let expect = rs.flat_first_fit(pos);
                        let got = rs.select();
                        assert_eq!(got.map(|q| q.0 as usize), expect, "n={n} pos={pos}");
                        if let Some(idx) = expect {
                            pos = (idx + 1) % n;
                        }
                    }
                }
            }
            // Drain: every remaining live bit comes out in flat-scan order.
            loop {
                let expect = rs.flat_first_fit(pos);
                let got = rs.select();
                assert_eq!(got.map(|q| q.0 as usize), expect, "drain n={n} pos={pos}");
                match expect {
                    Some(idx) => pos = (idx + 1) % n,
                    None => break,
                }
            }
            assert_eq!(rs.ready_count(), 0, "n={n}: drain left live bits");
        }
    }
}

/// PPA gate-level estimates match naive oracles at the scale tiers and
/// at random widths: Brent–Kung pays `2*ceil(log2 n) + 3` levels, ripple
/// `4n`, and the banked arbiter tree pays `ceil(log_bank n)` stages of a
/// `bank`-wide arbiter — degenerating to the monolithic arbiter at
/// `n <= bank`, so the Table I hardware point is untouched.
#[test]
fn ppa_gate_level_models_match_oracles() {
    let naive_ceil_log2 = |n: usize| {
        let mut levels = 0u32;
        let mut span = 1usize;
        while span < n {
            span *= 2;
            levels += 1;
        }
        levels
    };
    let mut rng = SmallRng::seed_from_u64(0xA11C_E50B);
    let mut widths = vec![1usize, 64, 1024, 65_536, 1_048_576];
    for _ in 0..200 {
        widths.push(rng.random_range(1..100_000usize));
    }
    for &n in &widths {
        assert_eq!(
            PpaKind::BrentKung.gate_levels(n),
            2 * naive_ceil_log2(n) + 3,
            "n={n}"
        );
        assert_eq!(PpaKind::Ripple.gate_levels(n), 4 * n as u32, "n={n}");
        for bank in [2usize, 8, 64] {
            let banked = PpaKind::BrentKung.banked_gate_levels(n, bank);
            if n <= bank {
                assert_eq!(
                    banked,
                    PpaKind::BrentKung.gate_levels(n),
                    "n={n} bank={bank}"
                );
            } else {
                let mut stages = 0u32;
                let mut span = 1usize;
                while span < n {
                    span = span.saturating_mul(bank);
                    stages += 1;
                }
                assert_eq!(
                    banked,
                    stages * PpaKind::BrentKung.gate_levels(bank),
                    "n={n} bank={bank}"
                );
            }
        }
    }
}

/// A hashed-bank sharded monitoring set is observationally identical to
/// the monolithic table under random insert/remove/churn/snoop/arm
/// sequences: bank homing changes where an entry lives, never what the
/// protocol sees. Churn re-homes a queue's doorbell to a fresh line
/// (Algorithm 1), the sequence both sets must track in lockstep.
#[test]
fn sharded_monitoring_set_matches_monolithic_trace() {
    use hyperplane::device::monitoring::BankedMonitoringSet;
    use hyperplane::mem::types::LineAddr;
    let mut rng = SmallRng::seed_from_u64(0xA11C_E50C);
    for case in 0..60 {
        let mut mono = BankedMonitoringSet::new(4096, 1);
        let mut shard = BankedMonitoringSet::sharded(4096, 8, 4);
        mono.reserve_qids(256);
        shard.reserve_qids(256);
        // Queue q's doorbell in its current generation: unique per
        // (qid, generation), so churn never reuses a line.
        let mut generation = vec![0u64; 256];
        let line =
            |q: u32, generation: &[u64]| LineAddr(0x5000 + q as u64 + 256 * generation[q as usize]);
        let mut present: HashSet<u32> = HashSet::new();
        for _ in 0..rng.random_range(1..400usize) {
            let q = rng.random_range(0..256u32);
            match rng.random_range(0..5u8) {
                0 => {
                    // Insert if absent; at 6 % occupancy neither table
                    // can conflict, so both must accept.
                    if !present.contains(&q) {
                        mono.insert(QueueId(q), line(q, &generation))
                            .expect("case {case}: monolithic insert at low occupancy");
                        shard
                            .insert(QueueId(q), line(q, &generation))
                            .expect("case {case}: sharded insert at low occupancy");
                        present.insert(q);
                    }
                }
                1 => {
                    let (a, b) = (mono.remove(QueueId(q)), shard.remove(QueueId(q)));
                    assert_eq!(a, b, "case {case}: remove diverged for q{q}");
                    present.remove(&q);
                }
                2 => {
                    let l = line(q, &generation);
                    let (a, b) = (mono.snoop(l), shard.snoop(l));
                    assert_eq!(a, b, "case {case}: snoop diverged for q{q}");
                }
                3 => {
                    let (a, b) = (mono.arm(QueueId(q)), shard.arm(QueueId(q)));
                    assert_eq!(a, b, "case {case}: arm diverged for q{q}");
                }
                _ => {
                    // Churn: re-home the doorbell to a fresh line.
                    if present.contains(&q) {
                        let (a, b) = (mono.remove(QueueId(q)), shard.remove(QueueId(q)));
                        assert_eq!(a, b, "case {case}: churn remove diverged for q{q}");
                        generation[q as usize] += 1;
                        mono.insert(QueueId(q), line(q, &generation))
                            .expect("churn re-insert (monolithic)");
                        shard
                            .insert(QueueId(q), line(q, &generation))
                            .expect("churn re-insert (sharded)");
                    }
                }
            }
        }
        // The op trace was identical, so the observable counters must be
        // too (the snoop-range filter only reclassifies misses, and both
        // sides count a filtered miss as a miss).
        let (ms, ss) = (mono.stats(), shard.stats());
        assert_eq!(ms.inserts, ss.inserts, "case {case}");
        assert_eq!(ms.snoop_hits, ss.snoop_hits, "case {case}");
        assert_eq!(ms.snoop_misses, ss.snoop_misses, "case {case}");
        assert_eq!(ms.spill_resizes, 0, "case {case}: monolithic spilled");
        assert_eq!(ss.spill_resizes, 0, "case {case}: sharded spilled");
    }
}

/// Deterministic supplementary check: a store by core A makes core B's
/// next load miss (explicit staleness test, no sampling noise).
#[test]
fn store_invalidates_remote_copy() {
    let mut mem = MemSystem::new(MemSystemConfig::cmp(2));
    let addr = Addr(0x4_0000);
    mem.access(CoreId(1), addr, AccessKind::Load); // B caches the line
    mem.access(CoreId(0), addr, AccessKind::Store); // A takes ownership
    let r = mem.access(CoreId(1), addr, AccessKind::Load);
    assert_ne!(r.level, HitLevel::L1, "B must not hit a stale copy");
}
