//! Property-based tests (proptest) of the core data structures and
//! invariants, spanning crates.

use hyperplane::device::monitoring::MonitoringSet;
use hyperplane::device::ready_set::{PpaKind, ReadySet, ServicePolicy};
use hyperplane::mem::system::{MemSystem, MemSystemConfig};
use hyperplane::mem::types::{AccessKind, Addr, CoreId, HitLevel};
use hyperplane::prelude::*;
use hyperplane::queues::ring::MpmcRing;
use hyperplane::sim::stats::Histogram;
use hyperplane::workloads::aes::Aes256;
use hyperplane::workloads::raid::PqRaid;
use hyperplane::workloads::reed_solomon::ReedSolomon;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

proptest! {
    /// The Cuckoo monitoring set behaves exactly like a map from line to
    /// (qid, armed) under any operation sequence that fits.
    #[test]
    fn monitoring_set_matches_model(ops in prop::collection::vec((0u32..64, 0u8..4), 1..200)) {
        let mut ms = MonitoringSet::new(256);
        let mut model: HashMap<u32, bool> = HashMap::new(); // qid -> armed
        for (q, op) in ops {
            let line = hyperplane::mem::types::LineAddr(1000 + q as u64);
            match op {
                0 => {
                    // insert if absent
                    if !model.contains_key(&q) && ms.insert(QueueId(q), line).is_ok() {
                        model.insert(q, true);
                    }
                }
                1 => {
                    // snoop
                    let expect = model.get(&q).copied() == Some(true);
                    let got = ms.snoop(line).is_some();
                    prop_assert_eq!(got, expect, "snoop mismatch for q{}", q);
                    if expect {
                        model.insert(q, false);
                    }
                }
                2 => {
                    // arm
                    let present = model.contains_key(&q);
                    prop_assert_eq!(ms.arm(QueueId(q)), present);
                    if present {
                        model.insert(q, true);
                    }
                }
                _ => {
                    // remove
                    let present = model.remove(&q).is_some();
                    prop_assert_eq!(ms.remove(QueueId(q)).is_some(), present);
                }
            }
        }
        prop_assert_eq!(ms.occupancy(), model.len());
    }

    /// Ripple and Brent–Kung PPAs agree on arbitrary ready sets and
    /// policies over long grant sequences.
    #[test]
    fn ppa_implementations_equivalent(
        n in 1usize..200,
        activations in prop::collection::vec(0u32..200, 0..300),
        seed in 0u64..1000,
    ) {
        let mut a = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::Ripple);
        let mut b = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::BrentKung);
        for (i, &act) in activations.iter().enumerate() {
            let q = QueueId(act % n as u32);
            a.activate(q);
            b.activate(q);
            if (seed + i as u64).is_multiple_of(3) {
                prop_assert_eq!(a.select(), b.select());
            }
        }
        loop {
            let (x, y) = (a.select(), b.select());
            prop_assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }

    /// Round-robin never grants the same queue twice while others are
    /// continuously backlogged (fairness / starvation freedom).
    #[test]
    fn round_robin_starvation_free(n in 2usize..64, rounds in 1usize..20) {
        let mut rs = ReadySet::new(n, ServicePolicy::RoundRobin, PpaKind::BrentKung);
        let mut counts = vec![0u32; n];
        for _ in 0..rounds * n {
            for q in 0..n {
                rs.activate(QueueId(q as u32));
            }
            let q = rs.select().expect("all backlogged");
            counts[q.0 as usize] += 1;
        }
        let min = counts.iter().min().copied().expect("nonempty");
        let max = counts.iter().max().copied().expect("nonempty");
        prop_assert!(max - min <= 1, "unfair grants: {:?}", counts);
    }

    /// Reed–Solomon reconstructs any erasure pattern with <= m losses.
    #[test]
    fn reed_solomon_recovers_any_tolerable_erasure(
        k in 2usize..8,
        m in 1usize..4,
        len in 1usize..128,
        seed in 0u64..10_000,
        lost_sel in prop::collection::vec(any::<u16>(), 1..4),
    ) {
        let rs = ReedSolomon::new(k, m).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| ((seed as usize + i * 31 + j * 7) % 256) as u8).collect())
            .collect();
        let parity = rs.encode(&data).expect("well-formed");
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        let mut lost = HashSet::new();
        for sel in lost_sel.iter().take(m) {
            lost.insert(*sel as usize % (k + m));
        }
        for &l in &lost {
            shards[l] = None;
        }
        let rec = rs.reconstruct(&shards).expect("within tolerance");
        prop_assert_eq!(rec, data);
    }

    /// RAID P+Q rebuilds any double failure bit-exactly.
    #[test]
    fn raid_pq_rebuilds_any_pair(
        n in 2usize..12,
        len in 1usize..96,
        seed in 0u64..10_000,
        a in any::<u8>(),
        b in any::<u8>(),
    ) {
        let raid = PqRaid::new(n).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..n)
            .map(|i| (0..len).map(|j| ((seed as usize + i * 131 + j * 3) % 256) as u8).collect())
            .collect();
        let (p, q) = raid.compute_pq(&data).expect("well-formed");
        let x = a as usize % n;
        let y = b as usize % n;
        if x != y {
            let (dx, dy) = raid.recover_two(&data, x, y, &p, &q).expect("two failures");
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            prop_assert_eq!(dx, data[lo].clone());
            prop_assert_eq!(dy, data[hi].clone());
        } else {
            let d = raid.recover_one(&data, x, &p).expect("single failure");
            prop_assert_eq!(d, data[x].clone());
        }
    }

    /// AES-256-CBC decrypt(encrypt(x)) == x for arbitrary block-aligned
    /// payloads, keys, and IVs.
    #[test]
    fn aes_cbc_roundtrip(
        key in prop::array::uniform32(any::<u8>()),
        iv in prop::array::uniform16(any::<u8>()),
        blocks in 1usize..16,
        seed in any::<u64>(),
    ) {
        let aes = Aes256::new(&key);
        let original: Vec<u8> =
            (0..blocks * 16).map(|i| ((seed as usize).wrapping_mul(31).wrapping_add(i * 7) % 256) as u8).collect();
        let mut data = original.clone();
        aes.encrypt_cbc(&iv, &mut data).expect("aligned");
        prop_assert_ne!(&data, &original);
        aes.decrypt_cbc(&iv, &mut data).expect("aligned");
        prop_assert_eq!(data, original);
    }

    /// Histogram percentiles are within the documented relative-error
    /// bound of exact order statistics.
    #[test]
    fn histogram_percentile_bounded_error(
        values in prop::collection::vec(1u64..1_000_000, 10..500),
        p in 1.0f64..100.0,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
        let exact = sorted[rank] as f64;
        let approx = h.percentile(p) as f64;
        prop_assert!(
            (approx - exact).abs() / exact < 0.05,
            "p{}: approx {} exact {}", p, approx, exact
        );
    }

    /// The MPMC ring delivers every pushed value exactly once, in FIFO
    /// order for a single producer/consumer pair.
    #[test]
    fn ring_fifo_exactly_once(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let (tx, rx) = MpmcRing::with_capacity(64);
        let mut popped = Vec::new();
        for chunk in values.chunks(32) {
            for &v in chunk {
                tx.push(v).expect("chunk fits");
            }
            while let Some(v) = rx.pop() {
                popped.push(v);
            }
        }
        prop_assert_eq!(popped, values);
    }

    /// Coherence safety: after any access sequence, a store by one core
    /// invalidates all other cores' copies (no stale hits).
    #[test]
    fn mesi_no_stale_copies(
        accesses in prop::collection::vec((0usize..4, 0u64..8, any::<bool>()), 1..200),
    ) {
        let mut mem = MemSystem::new(MemSystemConfig::cmp(4));
        let mut last_writer: HashMap<u64, usize> = HashMap::new();
        for (core, lineno, is_store) in accesses {
            let addr = Addr(0x10_000 + lineno * 64);
            let kind = if is_store { AccessKind::Store } else { AccessKind::Load };
            let r = mem.access(CoreId(core), addr, kind);
            if is_store {
                last_writer.insert(lineno, core);
            } else if let Some(&w) = last_writer.get(&lineno) {
                // A load by a non-writer immediately after a store cannot
                // be a (stale) L1 hit unless this core reloaded since.
                let _ = w;
                prop_assert!(matches!(
                    r.level,
                    HitLevel::L1 | HitLevel::Llc | HitLevel::RemoteL1 | HitLevel::Memory
                ));
            }
        }
    }
}

/// Deterministic supplementary check: a store by core A makes core B's
/// next load miss (explicit staleness test, no proptest noise).
#[test]
fn store_invalidates_remote_copy() {
    let mut mem = MemSystem::new(MemSystemConfig::cmp(2));
    let addr = Addr(0x4_0000);
    mem.access(CoreId(1), addr, AccessKind::Load); // B caches the line
    mem.access(CoreId(0), addr, AccessKind::Store); // A takes ownership
    let r = mem.access(CoreId(1), addr, AccessKind::Load);
    assert_ne!(r.level, HitLevel::L1, "B must not hit a stale copy");
}
