//! Fault-plane acceptance tests: deterministic injection, missed-wakeup
//! stall detection, timeout-driven recovery, and graceful degradation.
//!
//! Everything here runs on fixed seeds and bounded simulated horizons —
//! no wall-clock, no randomness outside the engine's own seeded streams.

use hp_sdp::config::{ExperimentConfig, Load, Notifier};
use hp_sdp::runner;
use hp_sim::faults::FaultPlan;
use hp_traffic::shape::TrafficShape;
use hp_workloads::service::WorkloadKind;

/// A small HyperPlane experiment at a moderate open-loop drive: enough
/// headroom that recovery work, not queueing collapse, dominates the
/// fault response.
fn base(load_fraction: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(WorkloadKind::PacketEncap, TrafficShape::SingleQueue, 16)
        .with_notifier(Notifier::hyperplane());
    let rate = cfg.capacity_estimate_per_core() * load_fraction;
    cfg = cfg.with_load(Load::RatePerSec(rate));
    cfg.target_completions = 2_000;
    cfg
}

fn full_drop() -> FaultPlan {
    FaultPlan::parse("drop=1.0").unwrap()
}

#[test]
fn watchdog_reports_missed_wakeup_stall_without_timeout() {
    // 100 % doorbell drop, no QWAIT timeout: the first halt after the
    // queue backlogs is unrecoverable. The watchdog must say so.
    let mut cfg = base(0.5).with_faults(full_drop()).with_watchdog(1_000_000);
    cfg.watchdog_abort = true;
    cfg.max_cycles = 500_000_000;
    let r = runner::run(cfg);
    assert!(r.stalled(), "watchdog missed the stall");
    let f = r.fault_report().expect("faulty run carries a report");
    assert!(f.first_stall.is_some());
    assert!(f.aborted_on_stall, "watchdog_abort should stop the run");
    assert!(f.injected.doorbells_dropped > 0);
    // The data plane cannot have finished its work.
    assert!(
        r.completions < 2_000,
        "completed {} despite total drop",
        r.completions
    );
}

#[test]
fn qwait_timeout_recovers_the_same_seed_to_completion() {
    // Identical seed and fault stream as the stall test — but with the
    // re-poll timeout armed, every missed wake-up is recovered and all
    // work completes.
    let cfg = base(0.5)
        .with_faults(full_drop())
        .with_qwait_timeout(20_000)
        .with_watchdog(4_000_000);
    let r = runner::run(cfg);
    assert!(
        r.completions >= 2_000,
        "only {} completions under total drop with timeout",
        r.completions
    );
    let f = r.fault_report().unwrap();
    assert!(f.qwait_timeouts > 0);
    assert!(f.recoveries > 0, "no timeout expiry ever found missed work");
    assert!(!f.recovery_latency_cycles.is_empty());
}

#[test]
fn same_seed_same_faulty_result() {
    // The fault plane draws from its own RNG stream, so a faulty run is
    // as reproducible as a clean one: bit-identical results.
    let mk = || {
        base(0.5)
            .with_faults(FaultPlan::parse("drop=0.4,delay=0.3,spurious=0.05").unwrap())
            .with_qwait_timeout(20_000)
            .with_watchdog(4_000_000)
            .with_seed(0xFA17)
    };
    let a = runner::run(mk());
    let b = runner::run(mk());
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.drops, b.drops);
    assert_eq!(a.throughput_tps.to_bits(), b.throughput_tps.to_bits());
    assert_eq!(
        a.latency_cycles.percentile(99.0),
        b.latency_cycles.percentile(99.0)
    );
    let (fa, fb) = (a.fault_report().unwrap(), b.fault_report().unwrap());
    assert_eq!(fa.injected, fb.injected);
    assert_eq!(fa.qwait_timeouts, fb.qwait_timeouts);
    assert_eq!(fa.recoveries, fb.recoveries);
}

#[test]
fn no_deadlock_under_total_drop_across_seeds() {
    // Property: with the timeout armed, QWAIT never deadlocks — across
    // seeds, 100 % doorbell drop still drains the offered work within a
    // bounded simulated horizon.
    for seed in [1u64, 7, 0xDEAD, 0x5EED_5EED] {
        let mut cfg = base(0.5)
            .with_faults(full_drop())
            .with_qwait_timeout(20_000)
            .with_watchdog(4_000_000)
            .with_seed(seed);
        cfg.target_completions = 1_000;
        cfg.max_cycles = 2_000_000_000;
        let r = runner::run(cfg);
        assert!(
            r.completions >= 1_000,
            "seed {seed:#x}: stalled at {} completions",
            r.completions
        );
        assert!(r.end.0 < 2_000_000_000, "seed {seed:#x}: ran out the clock");
    }
}

#[test]
fn degradation_is_graceful_and_monotone() {
    // Mean latency rises with the doorbell-drop rate (more recoveries
    // ride the timeout instead of the snoop), but throughput holds: the
    // offered load keeps being served at every drop rate.
    let mut means = Vec::new();
    for drop in [0.0f64, 0.5, 0.9] {
        let mut plan = FaultPlan::none();
        plan.doorbell_drop = drop;
        let cfg = base(0.3)
            .with_faults(plan)
            .with_qwait_timeout(20_000)
            .with_watchdog(4_000_000);
        let r = runner::run(cfg);
        assert!(
            r.completions >= 2_000,
            "drop {drop}: only {} completions",
            r.completions
        );
        means.push(r.mean_latency_us());
    }
    assert!(
        means[0] <= means[1] && means[1] <= means[2],
        "degradation curve not monotone: {means:?}"
    );
    // And the degradation is real — total drop costs visible latency.
    assert!(
        means[2] > means[0],
        "drop=0.9 should cost latency: {means:?}"
    );
}

#[test]
fn watchdog_detects_stall_within_one_period() {
    // The watchdog fires on period ticks; with abort armed the run ends
    // at the very tick that first observed the stall, so the detection
    // bound is the period itself.
    let period = 1_000_000;
    let mut cfg = base(0.5).with_faults(full_drop()).with_watchdog(period);
    cfg.watchdog_abort = true;
    cfg.max_cycles = 500_000_000;
    let r = runner::run(cfg);
    let f = r.fault_report().expect("faulty run carries a report");
    let first = f.first_stall.expect("total drop must stall").0;
    assert_eq!(first % period, 0, "watchdog fired off its tick grid");
    assert!(r.end.0 >= first);
    assert!(
        r.end.0 - first <= period,
        "abort did not stop within one period of detection: first={} end={}",
        first,
        r.end.0
    );
}

#[test]
fn spurious_wakeups_never_double_service() {
    // QWAIT-VERIFY must filter spurious activations, and timeout sweeps
    // racing real doorbells must not double-drain a queue: the auditor
    // demands exactly-once service, across seeds.
    for seed in [3u64, 0xABCD] {
        let cfg = base(0.6)
            .with_faults(FaultPlan::parse("spurious=0.3,drop=0.3").unwrap())
            .with_qwait_timeout(20_000)
            .with_watchdog(4_000_000)
            .with_audit()
            .with_seed(seed);
        let r = runner::run(cfg);
        let a = r.audit_report().expect("auditor was enabled");
        assert!(a.ok(), "seed {seed:#x}: conservation violated: {a:?}");
        assert_eq!(a.double_services, 0);
        assert_eq!(a.double_dequeues, 0);
        assert_eq!(a.phantoms, 0);
        // Every engine completion is an audited exactly-once service.
        assert_eq!(a.serviced, r.completions);
    }
}

#[test]
fn conservation_holds_under_silent_evictions_and_chaos() {
    // The harshest shipped configuration: silent evictions, a correlated
    // burst, a storm phase, and live doorbell churn. Conservation must
    // hold, churn must actually fire, and the run must be reproducible.
    use hp_sim::chaos::ChaosSchedule;
    let storm = FaultPlan::parse("drop=0.5,delay=0.2,evict=0.01,spurious=0.05").unwrap();
    let mk = || {
        base(0.5)
            .with_faults(storm.scaled(0.5))
            .with_chaos(
                ChaosSchedule::none()
                    .with_burst(2_000_000, 500_000, 2.0)
                    .with_phase(3_000_000, 6_000_000, storm.clone())
                    .with_churn(2_500_000),
            )
            .with_silent_evictions()
            .with_audit()
            .with_qwait_timeout(20_000)
            .with_watchdog(4_000_000)
            .with_seed(0xC4A0_5C4A)
    };
    let r = runner::run(mk());
    let a = r.audit_report().expect("auditor was enabled");
    assert!(a.ok(), "conservation violated under full chaos: {a:?}");
    assert_eq!(a.lost, 0);
    assert!(r.completions >= 2_000, "chaos run did not finish its work");
    let f = r.fault_report().unwrap();
    assert!(f.churn_reallocations > 0, "doorbell churn never fired");
    // Chaos plan swaps happen at schedule boundaries only, never touching
    // the fault stream: the whole run replays bit-identically.
    let r2 = runner::run(mk());
    assert_eq!(r.completions, r2.completions);
    assert_eq!(r.throughput_tps.to_bits(), r2.throughput_tps.to_bits());
    assert_eq!(f.injected, r2.fault_report().unwrap().injected);
    assert_eq!(r.audit_report(), r2.audit_report());
}

#[test]
fn recoveries_are_attributed_to_their_fault_class() {
    // Pure doorbell drop: every recovery is lost-doorbell class (no
    // monitoring entry was ever evicted, so no sweep re-registers one).
    let cfg = base(0.5)
        .with_faults(full_drop())
        .with_qwait_timeout(20_000)
        .with_watchdog(4_000_000);
    let r = runner::run(cfg);
    let f = r.fault_report().unwrap();
    assert!(f.doorbell_recoveries > 0);
    assert_eq!(f.eviction_recoveries, 0, "no evictions were injected");
    assert_eq!(f.recoveries, f.doorbell_recoveries + f.eviction_recoveries);
    assert_eq!(
        f.recovery_latency_cycles.count(),
        f.doorbell_recovery_latency.count() + f.eviction_recovery_latency.count()
    );

    // Pure eviction: recoveries must re-register entries — eviction class.
    let cfg = base(0.5)
        .with_faults(FaultPlan::parse("evict=0.05").unwrap())
        .with_qwait_timeout(20_000)
        .with_watchdog(4_000_000);
    let r = runner::run(cfg);
    let f = r.fault_report().unwrap();
    assert!(f.injected.evictions > 0, "eviction plan never fired");
    assert!(f.eviction_recoveries > 0, "evictions never classed");
    assert_eq!(f.recoveries, f.doorbell_recoveries + f.eviction_recoveries);
}
