//! Randomised property tests of the workload kernels and simulation
//! primitives not covered by `properties.rs`. Cases are drawn from
//! fixed-seed [`hp_rand`] streams, so the suite is fully deterministic.

use hp_rand::rngs::SmallRng;
use hp_rand::{Rng, SeedableRng};
use hyperplane::mem::dir::DirTable;
use hyperplane::queues::sim::{QueueId, QueueLayout};
use hyperplane::sim::event::EventQueue;
use hyperplane::sim::time::SimTime;
use hyperplane::workloads::dispatch::{Dispatcher, Request, RequestType};
use hyperplane::workloads::gf256::Gf256;
use hyperplane::workloads::packet::{build_ipv4_packet, internet_checksum, GreEncapsulator};
use hyperplane::workloads::steering::{toeplitz_hash, FlowKey, PacketSteerer, DEFAULT_RSS_KEY};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

fn random_bytes(rng: &mut SmallRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random()).collect()
}

/// The Toeplitz hash is linear over GF(2): H(x ^ y) == H(x) ^ H(y). This is
/// the property RSS implementations exploit for incremental flow-hash
/// updates — and a strong structural check of our bit-level implementation.
#[test]
fn toeplitz_is_gf2_linear() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_0001);
    for _case in 0..200 {
        let x = random_bytes(&mut rng, 12);
        let y = random_bytes(&mut rng, 12);
        let xy: Vec<u8> = x.iter().zip(&y).map(|(a, b)| a ^ b).collect();
        let hx = toeplitz_hash(&DEFAULT_RSS_KEY, &x);
        let hy = toeplitz_hash(&DEFAULT_RSS_KEY, &y);
        let hxy = toeplitz_hash(&DEFAULT_RSS_KEY, &xy);
        assert_eq!(hxy, hx ^ hy);
    }
}

/// The session table behaves exactly like a HashMap model under arbitrary
/// steer/remove interleavings (while within capacity).
#[test]
fn steering_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_0002);
    for _case in 0..100 {
        let mut s = PacketSteerer::new(256, 4);
        let mut model: HashMap<u16, u16> = HashMap::new();
        let n_ops = rng.random_range(1..300usize);
        for _ in 0..n_ops {
            let port = rng.random_range(0..50u16);
            let is_remove = rng.random::<bool>();
            let flow = FlowKey {
                src_ip: [10, 0, 0, 1],
                dst_ip: [10, 0, 0, 2],
                src_port: port,
                dst_port: 80,
                protocol: 6,
            };
            if is_remove {
                let got = s.remove(&flow);
                assert_eq!(got, model.remove(&port), "remove({port})");
            } else {
                let dest = s.steer(&flow).expect("within capacity");
                match model.get(&port) {
                    Some(&d) => assert_eq!(dest, d, "affinity broken for {port}"),
                    None => {
                        model.insert(port, dest);
                    }
                }
            }
            assert_eq!(s.sessions(), model.len());
        }
    }
}

/// GRE encapsulation roundtrips arbitrary payloads and preserves the inner
/// bytes exactly.
#[test]
fn gre_roundtrip_arbitrary_payload() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_0003);
    for _case in 0..80 {
        let payload_len = rng.random_range(0..1200usize);
        let payload = random_bytes(&mut rng, payload_len);
        let src = [rng.random(), rng.random(), rng.random(), rng.random()];
        let dst = [rng.random(), rng.random(), rng.random(), rng.random()];
        let ident: u16 = rng.random();
        let tun = GreEncapsulator::new([1; 16], [2; 16]);
        let inner = build_ipv4_packet(src, dst, ident, &payload);
        let wrapped = tun.encapsulate(&inner).expect("valid inner packet");
        let unwrapped = tun.decapsulate(&wrapped).expect("we built it");
        assert_eq!(&unwrapped[..], &inner[..]);
    }
}

/// Every packet built by the helper carries a verifying checksum, and any
/// single-bit header corruption breaks it.
#[test]
fn checksum_detects_single_bit_flips() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_0004);
    for _case in 0..200 {
        let src = [rng.random(), rng.random(), rng.random(), rng.random()];
        let ident: u16 = rng.random();
        let bit = rng.random_range(0..(20 * 8) as usize);
        let pkt = build_ipv4_packet(src, [8, 8, 8, 8], ident, &[0u8; 8]);
        assert_eq!(internet_checksum(&pkt[..20]), 0);
        let mut bad = pkt.to_vec();
        bad[bit / 8] ^= 1 << (bit % 8);
        // Ones'-complement sums have one ambiguity: +0 / -0. Skip flips
        // that produce the alternate zero representation.
        let sum = internet_checksum(&bad[..20]);
        if bad[bit / 8] != pkt[bit / 8] {
            assert!(
                sum != 0 || checksum_zero_alias(&pkt, &bad),
                "undetected corruption"
            );
        }
    }
}

/// Dispatcher: round-robin cursor is per-type — interleaving types never
/// disturbs another type's backend sequence.
#[test]
fn dispatcher_cursors_are_independent() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_0005);
    for _case in 0..60 {
        let mut d = Dispatcher::new();
        for t in RequestType::ALL {
            d.register(t, 3, 100);
        }
        let mut expect: HashMap<u8, u16> = HashMap::new();
        let n_ops = rng.random_range(1..100usize);
        for i in 0..n_ops {
            let code = rng.random_range(0..5u8);
            let rtype = RequestType::ALL[code as usize];
            let req = Request {
                rtype,
                tenant: 1,
                correlation: i as u64,
                body: hp_bytes::Bytes::new(),
            };
            let rpc = d.dispatch(&req.encode()).expect("registered");
            let cursor = expect.entry(code).or_insert(0);
            assert_eq!(rpc.backend, *cursor % 3);
            *cursor += 1;
        }
    }
}

/// GF(2^8): (a*b)*c == a*(b*c) and Fermat a^255 == 1 for a != 0.
#[test]
fn gf256_algebra() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_0006);
    let g = Gf256::new();
    for _case in 0..2000 {
        let a: u8 = rng.random();
        let b: u8 = rng.random();
        let c: u8 = rng.random();
        assert_eq!(g.mul(g.mul(a, b), c), g.mul(a, g.mul(b, c)));
        if a != 0 {
            assert_eq!(g.pow(a, 255), 1);
        }
    }
}

/// Event queue pops in nondecreasing time order with FIFO ties, for any
/// schedule sequence.
#[test]
fn event_queue_total_order() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_0007);
    for _case in 0..100 {
        let n = rng.random_range(1..200usize);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule_at(SimTime(rng.random_range(0..1000u64)), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                assert!(t >= lt);
                if t == lt {
                    assert!(id > lid, "FIFO tie-break violated");
                }
            }
            last = Some((t, id));
        }
    }
}

/// The calendar-wheel event queue is observationally equivalent to a
/// reference binary heap ordered by (time, insertion sequence), under
/// arbitrary interleavings of schedules and pops. Offsets are drawn to
/// exercise every internal regime: time ties (FIFO), the one-cycle wheel
/// window, the far-horizon heap, and distant one-shot timers.
#[test]
fn calendar_queue_matches_reference_heap() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_0009);
    for _case in 0..60 {
        let mut q = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut next_id = 0u32;
        let n_ops = rng.random_range(1..400usize);
        for _ in 0..n_ops {
            if rng.random::<bool>() || model.is_empty() {
                let off = match rng.random_range(0..4u8) {
                    0 => rng.random_range(0..8u64),    // ties and immediate wakes
                    1 => rng.random_range(0..4096),    // within the wheel window
                    2 => rng.random_range(0..1 << 20), // far-horizon heap
                    _ => 1 << 40,                      // distant one-shot timer
                };
                q.schedule_at(SimTime(now + off), next_id);
                model.push(Reverse((now + off, seq, next_id)));
                seq += 1;
                next_id += 1;
            } else {
                let (t, id) = q.pop().expect("model is non-empty");
                let Reverse((mt, _, mid)) = model.pop().expect("checked non-empty");
                assert_eq!((t.0, id), (mt, mid));
                now = mt;
            }
        }
        while let Some(Reverse((mt, _, mid))) = model.pop() {
            assert_eq!(q.pop(), Some((SimTime(mt), mid)));
        }
        assert!(q.pop().is_none());
    }
}

/// `pop_batch` is observationally equivalent to a reference binary heap
/// ordered by `(time, insertion sequence)`: under arbitrary interleavings
/// of schedules, single pops, and batch pops, the head plus drained run
/// reproduce the heap's exact order, and a batch never spans two
/// distinct timestamps.
#[test]
fn pop_batch_matches_reference_heap() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_000E);
    for _case in 0..60 {
        let mut q = EventQueue::new();
        let mut model: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut next_id = 0u32;
        let mut run: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let n_ops = rng.random_range(1..400usize);
        for _ in 0..n_ops {
            match rng.random_range(0..3u8) {
                0 => {
                    let off = match rng.random_range(0..4u8) {
                        0 => 0, // guaranteed same-instant runs
                        1 => rng.random_range(0..8u64),
                        2 => rng.random_range(0..4096),
                        _ => rng.random_range(0..1 << 20),
                    };
                    q.schedule_at(SimTime(now + off), next_id);
                    model.push(Reverse((now + off, seq, next_id)));
                    seq += 1;
                    next_id += 1;
                }
                1 => {
                    if let Some((t, id)) = q.pop() {
                        let Reverse((mt, _, mid)) = model.pop().expect("model tracks q");
                        assert_eq!((t.0, id), (mt, mid));
                        now = mt;
                    }
                }
                _ => {
                    assert!(run.is_empty(), "previous batch fully drained");
                    if let Some((t, head)) = q.pop_batch(&mut run) {
                        let Reverse((mt, _, mid)) = model.pop().expect("model tracks q");
                        assert_eq!((t.0, head), (mt, mid), "batch head diverged");
                        now = mt;
                        for id in run.drain(..) {
                            let Reverse((bt, _, bid)) = model.pop().expect("run in model");
                            assert_eq!((t.0, id), (bt, bid), "batch tail diverged");
                        }
                        // The drained run consumed the *entire* same-time
                        // bucket: the next model event is strictly later.
                        if let Some(Reverse((nt, _, _))) = model.peek() {
                            assert!(*nt > t.0, "batch left same-instant events behind");
                        }
                    } else {
                        assert!(model.is_empty());
                    }
                }
            }
        }
        while let Some(Reverse((mt, _, mid))) = model.pop() {
            assert_eq!(q.pop(), Some((SimTime(mt), mid)));
        }
        assert!(q.pop().is_none());
    }
}

/// Scheduling behind the queue's notion of "now" is a model bug, not a
/// recoverable condition: the queue must refuse rather than misorder.
#[test]
#[should_panic(expected = "scheduling into the past")]
fn calendar_queue_rejects_past_schedules() {
    let mut q = EventQueue::new();
    q.schedule_at(SimTime(100), 0u32);
    q.pop();
    q.schedule_at(SimTime(5), 1u32);
}

/// The open-addressed directory table behaves exactly like a `HashMap`
/// under random insert/lookup/mutate/remove churn. Keys are clustered to
/// force probe chains and exercise backward-shift deletion.
#[test]
fn dir_table_matches_hashmap_model() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_000A);
    for _case in 0..40 {
        let mut t: DirTable<u64> = DirTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let n_ops = rng.random_range(1..600usize);
        for _ in 0..n_ops {
            let key = rng.random_range(0..200u64) * 0x9E37_79B9;
            match rng.random_range(0..4u8) {
                0 => {
                    *t.entry_or_default(key) += 1;
                    *model.entry(key).or_default() += 1;
                }
                1 => assert_eq!(t.get(key), model.get(&key)),
                2 => {
                    if let Some(v) = t.get_mut(key) {
                        *v ^= 0xFF;
                    }
                    if let Some(v) = model.get_mut(&key) {
                        *v ^= 0xFF;
                    }
                }
                _ => assert_eq!(t.remove(key), model.remove(&key)),
            }
            assert_eq!(t.len(), model.len());
        }
    }
}

/// Queue layout: doorbell, descriptor, and buffer regions never share a
/// cache line, for any geometry.
#[test]
fn layout_regions_disjoint() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF_0008);
    for _case in 0..150 {
        let queues = rng.random_range(1..300u32);
        let lines = rng.random_range(1..32u64);
        let entries = rng.random_range(1..6u64);
        let l = QueueLayout::new(queues, lines, entries);
        let q_probe = QueueId(queues - 1);
        let db = l.doorbell(q_probe).line();
        let desc = l.descriptor(q_probe).line();
        assert_ne!(db.0, desc.0);
        for a in l.buffer_lines(q_probe, 0) {
            assert_ne!(a.line().0, db.0);
            assert_ne!(a.line().0, desc.0);
        }
    }
}

/// Ones'-complement checksums treat 0x0000 and 0xFFFF as the same value; a
/// flip can legitimately land on the alias.
fn checksum_zero_alias(_orig: &[u8], corrupted: &[u8]) -> bool {
    internet_checksum(&corrupted[..20]) == 0
}

/// Deterministic check: the Toeplitz linearity property composes — the
/// hash of any tuple equals the XOR of per-bit basis hashes.
#[test]
fn toeplitz_decomposes_into_bit_basis() {
    let input = [
        0x12u8, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0, 0x11, 0x22, 0x33, 0x44,
    ];
    let mut expect = 0u32;
    for byte in 0..12 {
        for bit in 0..8 {
            if (input[byte] >> bit) & 1 == 1 {
                let mut basis = [0u8; 12];
                basis[byte] = 1 << bit;
                expect ^= toeplitz_hash(&DEFAULT_RSS_KEY, &basis);
            }
        }
    }
    assert_eq!(toeplitz_hash(&DEFAULT_RSS_KEY, &input), expect);
}

/// Snapshot of one core's telemetry as a comparable tuple.
fn stats_tuple(s: hyperplane::mem::system::CoreMemStats) -> (u64, u64, u64, u64) {
    (s.l1_hits, s.llc_hits, s.remote_hits, s.dram_fetches)
}

/// The fast-path `MemSystem` agrees access-for-access with the
/// deliberately-different reference implementation (array-of-structs sets,
/// std `HashMap` directory) on randomized multi-core load/store/probe
/// traces: identical `AccessResult`s, identical per-core telemetry,
/// identical interconnect counters, identical final MESI states.
#[test]
fn mem_system_matches_reference_for_random_traces() {
    use hyperplane::mem::reference::RefMemSystem;
    use hyperplane::mem::{AccessKind, Addr, CoreId, MemSystem, MemSystemConfig};

    let mut rng = SmallRng::seed_from_u64(0xBEEF_000B);
    for _case in 0..25 {
        let cores = 1usize << rng.random_range(0..3u32);
        let cfg = MemSystemConfig::cmp(cores);
        let mut fast = MemSystem::new(cfg);
        let mut reference = RefMemSystem::new(cfg);
        // A small, clustered line space forces sharing, ping-pong, set
        // conflicts, and eviction churn within a short trace.
        let lines = rng.random_range(4..120u64);
        let n_ops = rng.random_range(1..800usize);
        let mut touched = Vec::new();
        for _ in 0..n_ops {
            let line = rng.random_range(0..lines);
            let addr = Addr(line * hyperplane::mem::LINE_BYTES);
            touched.push(addr.line());
            if rng.random_range(0..10u8) == 0 {
                // Doorbell-style monitoring probe: downgrades an M/E
                // holder to S, exactly as QWAIT's snoop does.
                let a = fast.probe_shared(addr.line());
                let b = reference.probe_shared(addr.line());
                assert_eq!(a, b, "probe_shared latency diverged");
                continue;
            }
            let core = CoreId(rng.random_range(0..cores));
            let kind = if rng.random_range(0..10u8) < 3 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let a = fast.access(core, addr, kind);
            let b = reference.access(core, addr, kind);
            assert_eq!(a, b, "{kind:?} by {core:?} at {addr:?} diverged");
        }
        for c in 0..cores {
            assert_eq!(
                stats_tuple(fast.core_stats(CoreId(c))),
                stats_tuple(reference.core_stats(CoreId(c))),
                "core {c} telemetry diverged"
            );
            for &l in &touched {
                assert_eq!(
                    fast.l1_state(CoreId(c), l),
                    reference.l1_state(CoreId(c), l),
                    "final MESI state diverged for core {c} line {l:?}"
                );
            }
        }
        assert_eq!(fast.getm_total(), reference.getm_total());
        assert_eq!(fast.invalidation_total(), reference.invalidation_total());
    }
}

/// Traces crafted to drive the spinning-path fast route (DESIGN.md §13)
/// through its reachable arms — sole-holder reloads in E and sharer-set
/// joins (the S-state LLC hits) — under set-conflict eviction churn,
/// agree access-for-access with the reference implementation. The trace
/// shape: a pool of lines shared read-mostly by several cores, plus
/// per-core private lines mapped into the *same* L1 sets so reloads of
/// the shared pool keep missing L1 and hitting the LLC.
///
/// The read-only peek arm is additionally pinned *unreachable in
/// visible-eviction configs* (the default): that protocol tracks every
/// L1 eviction (the victim's sharer bit is cleared eagerly in
/// `fill_l1`), so a core can never miss its L1 while its sharer bit is
/// still set — the precondition for the peek. Under silent-eviction
/// mode the precondition arises routinely and the arm must be live and
/// correct — `silent_evictions_make_the_peek_arm_live` pins the
/// inverted property.
#[test]
fn s_state_llc_fast_route_matches_reference() {
    use hyperplane::mem::reference::RefMemSystem;
    use hyperplane::mem::{AccessKind, Addr, CoreId, MemSystem, MemSystemConfig, LINE_BYTES};

    let mut rng = SmallRng::seed_from_u64(0xBEEF_000F);
    let mut peeks = 0u64;
    let mut joins = 0u64;
    let mut reloads = 0u64;
    for _case in 0..20 {
        let cores = 2usize << rng.random_range(0..2u32);
        let cfg = MemSystemConfig::cmp(cores);
        let mut fast = MemSystem::new(cfg);
        let mut reference = RefMemSystem::new(cfg);
        // L1: 128 sets, 4 ways. Shared pool in sets 0..8; conflict lines
        // are the same sets shifted by multiples of 128 so they alias.
        let shared: Vec<u64> = (0..8u64).collect();
        let n_ops = rng.random_range(200..1200usize);
        for _ in 0..n_ops {
            let core = CoreId(rng.random_range(0..cores));
            let line = if rng.random_range(0..3u8) == 0 {
                // Conflict filler: evicts shared-pool lines from this
                // core's L1 without touching directory sharer sets.
                (1 + rng.random_range(1..6u64)) * 128 + rng.random_range(0..8u64)
            } else {
                shared[rng.random_range(0..shared.len())]
            };
            let addr = Addr(line * LINE_BYTES);
            // Read-mostly: rare stores reset a line's sharer set so the
            // join arm (re-growing it) keeps firing too.
            let kind = if rng.random_range(0..40u8) == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let a = fast.access(core, addr, kind);
            let b = reference.access(core, addr, kind);
            assert_eq!(a, b, "{kind:?} by {core:?} at {addr:?} diverged");
        }
        for c in 0..cores {
            assert_eq!(
                stats_tuple(fast.core_stats(CoreId(c))),
                stats_tuple(reference.core_stats(CoreId(c))),
                "core {c} telemetry diverged"
            );
        }
        assert_eq!(fast.getm_total(), reference.getm_total());
        assert_eq!(fast.invalidation_total(), reference.invalidation_total());
        let fp = fast.fastpath_stats();
        peeks += fp.s_state_peeks;
        joins += fp.shared_joins;
        reloads += fp.stable_reloads;
    }
    // The trace must actually exercise what it claims to — and the peek
    // arm must stay unreachable while L1 evictions are tracked (doc
    // comment above); a nonzero count means eviction bookkeeping changed.
    assert_eq!(peeks, 0, "peek arm fired: evictions no longer tracked?");
    assert!(joins > 0, "no sharer-set joins fired");
    assert!(reloads > 0, "no sole-holder reloads fired");
}

/// The inverse pin for silent-eviction mode: S/E victims leave the L1
/// without clearing their directory sharer bit, so "L1 miss with own
/// sharer bit still set" — the peek arm's precondition — arises
/// routinely, and the arm must now be *reachable and correct*. The
/// visible-eviction reference is not a valid oracle here (directories
/// legitimately diverge), so correctness is pinned A/B: the same trace
/// on two silent-mode systems, spinning-path fast route on vs off, must
/// agree access-for-access, on telemetry, on every final MESI state,
/// and on the stale-invalidation count.
#[test]
fn silent_evictions_make_the_peek_arm_live() {
    use hyperplane::mem::{AccessKind, Addr, CoreId, MemSystem, MemSystemConfig, LINE_BYTES};

    let mut rng = SmallRng::seed_from_u64(0xBEEF_0510);
    let mut peeks = 0u64;
    let mut stale = 0u64;
    for _case in 0..20 {
        let cores = 2usize << rng.random_range(0..2u32);
        let mut cfg = MemSystemConfig::cmp(cores);
        cfg.silent_evictions = true;
        let mut fast = MemSystem::new(cfg);
        let mut slow_cfg = cfg;
        slow_cfg.fast_path = false;
        let mut slow = MemSystem::new(slow_cfg);
        // Same trace shape as the visible-mode pin: a read-mostly shared
        // pool plus same-set conflict fillers that evict pool lines from
        // the L1 — silently, this time, so sharer bits go stale.
        let shared: Vec<u64> = (0..8u64).collect();
        let mut touched: Vec<u64> = (0..8u64).collect();
        let n_ops = rng.random_range(200..1200usize);
        for _ in 0..n_ops {
            let core = CoreId(rng.random_range(0..cores));
            let line = if rng.random_range(0..3u8) == 0 {
                (1 + rng.random_range(1..6u64)) * 128 + rng.random_range(0..8u64)
            } else {
                shared[rng.random_range(0..shared.len())]
            };
            touched.push(line);
            let addr = Addr(line * LINE_BYTES);
            let kind = if rng.random_range(0..40u8) == 0 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let a = fast.access(core, addr, kind);
            let b = slow.access(core, addr, kind);
            assert_eq!(a, b, "{kind:?} by {core:?} at {addr:?} diverged");
        }
        for c in 0..cores {
            assert_eq!(
                stats_tuple(fast.core_stats(CoreId(c))),
                stats_tuple(slow.core_stats(CoreId(c))),
                "core {c} telemetry diverged"
            );
            for &l in &touched {
                assert_eq!(
                    fast.l1_state(CoreId(c), hyperplane::mem::LineAddr(l)),
                    slow.l1_state(CoreId(c), hyperplane::mem::LineAddr(l)),
                    "final MESI state diverged for core {c} line {l}"
                );
            }
        }
        assert_eq!(fast.getm_total(), slow.getm_total());
        assert_eq!(fast.invalidation_total(), slow.invalidation_total());
        assert_eq!(
            fast.stale_invalidation_total(),
            slow.stale_invalidation_total()
        );
        peeks += fast.fastpath_stats().s_state_peeks;
        stale += fast.stale_invalidation_total();
    }
    // The inverted pin: the arm the visible protocol proves dead is the
    // common case once sharer bits can go stale...
    assert!(peeks > 0, "peek arm never fired under silent evictions");
    // ...and the stale bits are real (stores paid for vanished sharers).
    assert!(stale > 0, "no stale invalidations: evictions not silent?");
}

/// A spin-poll loop built exactly like the engine's — memo replay when
/// sealed, hint-gated re-record, hinted plain loads otherwise — is
/// indistinguishable from a twin that issues plain `access` calls:
/// identical latencies per poll, identical telemetry, and the
/// single-compare residency gate (`l1_hint_resident`) agrees with the
/// full set scan (`l1_resident`) at every step. Randomized doorbell-range
/// GetM snoops (device-side stores) land mid-replay and break memos; the
/// queue count overcommits the L1 so set-conflict evictions churn slots.
#[test]
fn hinted_poll_loop_matches_plain_access_twin() {
    use hyperplane::mem::system::LoadHint;
    use hyperplane::mem::{
        AccessKind, Addr, CoreId, MemSystem, MemSystemConfig, SeqMemo, LINE_BYTES,
    };

    let mut rng = SmallRng::seed_from_u64(0xBEEF_0010);
    for _case in 0..12 {
        let cfg = MemSystemConfig::cmp(2);
        let mut hinted = MemSystem::new(cfg);
        let mut plain = MemSystem::new(cfg);
        let core = CoreId(0);
        let dev = CoreId(1);
        // Queue count spans both regimes: small sets stay L1-resident
        // (memos replay), large ones overcommit the 512-line L1.
        let nq = [8usize, 48, 300][rng.random_range(0..3usize)];
        let db = |q: usize| Addr((2 * q) as u64 * LINE_BYTES);
        let desc = |q: usize| Addr((2 * q + 1) as u64 * LINE_BYTES);
        let mut memos: Vec<SeqMemo> = (0..nq).map(|_| SeqMemo::default()).collect();
        let mut ready = vec![false; nq];
        let mut hints: Vec<(LoadHint, LoadHint)> = vec![Default::default(); nq];
        let mut q = 0usize;
        for _ in 0..rng.random_range(200..2000usize) {
            if rng.random_range(0..50u8) == 0 {
                // Doorbell-range GetM snoop: the device writes a random
                // doorbell line, invalidating the poller's copy (and any
                // memo over it) mid-replay-stream.
                let v = rng.random_range(0..nq);
                let a = hinted.access(dev, db(v), AccessKind::Store);
                let b = plain.access(dev, db(v), AccessKind::Store);
                assert_eq!(a, b, "snoop store diverged");
                continue;
            }
            let (dbh, dsh) = &mut hints[q];
            assert_eq!(
                hinted.l1_hint_resident(core, dbh, db(q)),
                hinted.l1_resident(core, db(q)),
                "hint gate disagrees with set scan for queue {q}"
            );
            // The engine's poll structure, verbatim.
            let cost_hinted = {
                let replayed = if ready[q] && memos[q].core() == core {
                    hinted.replay_memo(&mut memos[q])
                } else {
                    None
                };
                match replayed {
                    Some(c) => c.count(),
                    None if hinted.l1_hint_resident(core, dbh, db(q)) => {
                        let m = &mut memos[q];
                        m.begin(core);
                        let p = hinted.record_access(m, core, db(q), AccessKind::Load);
                        let d = hinted.record_access(m, core, desc(q), AccessKind::Load);
                        hinted.seal_memo(m);
                        ready[q] = m.is_ready();
                        p.latency.count() + d.latency.count()
                    }
                    None => {
                        ready[q] = false;
                        let p = hinted.load_hinted(core, db(q), dbh);
                        let d = hinted.load_hinted(core, desc(q), dsh);
                        p.latency.count() + d.latency.count()
                    }
                }
            };
            let cost_plain = plain.access(core, db(q), AccessKind::Load).latency.count()
                + plain
                    .access(core, desc(q), AccessKind::Load)
                    .latency
                    .count();
            assert_eq!(cost_hinted, cost_plain, "poll of queue {q} mispriced");
            q = if q + 1 == nq { 0 } else { q + 1 };
        }
        for c in 0..2 {
            assert_eq!(
                stats_tuple(hinted.core_stats(CoreId(c))),
                stats_tuple(plain.core_stats(CoreId(c))),
                "telemetry diverged on core {c}"
            );
        }
        assert_eq!(hinted.getm_total(), plain.getm_total());
        assert_eq!(hinted.invalidation_total(), plain.invalidation_total());
    }
}

/// Disabling the wall-clock fast path (MRU filter, stable-state
/// short-circuit, memo replay) is observationally invisible: the same
/// trace produces identical results and telemetry either way.
#[test]
fn mem_fast_path_toggle_is_invisible() {
    use hyperplane::mem::{AccessKind, Addr, CoreId, MemSystem, MemSystemConfig};

    let mut rng = SmallRng::seed_from_u64(0xBEEF_000C);
    for _case in 0..25 {
        let cores = 1usize << rng.random_range(0..3u32);
        let mut cfg = MemSystemConfig::cmp(cores);
        cfg.fast_path = true;
        let mut on = MemSystem::new(cfg);
        cfg.fast_path = false;
        let mut off = MemSystem::new(cfg);
        let lines = rng.random_range(4..120u64);
        for _ in 0..rng.random_range(1..800usize) {
            let addr = Addr(rng.random_range(0..lines) * hyperplane::mem::LINE_BYTES);
            let core = CoreId(rng.random_range(0..cores));
            let kind = if rng.random_range(0..10u8) < 3 {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            assert_eq!(on.access(core, addr, kind), off.access(core, addr, kind));
        }
        for c in 0..cores {
            assert_eq!(
                stats_tuple(on.core_stats(CoreId(c))),
                stats_tuple(off.core_stats(CoreId(c)))
            );
        }
        assert_eq!(on.getm_total(), off.getm_total());
        assert_eq!(on.invalidation_total(), off.invalidation_total());
    }
}

/// Epoch-memoized sequence replay is indistinguishable from re-walking
/// the accesses: a twin system that never memoizes charges the same
/// cycles and accumulates the same telemetry, across random disturbances
/// (remote stores that invalidate recorded lines and break the memo).
#[test]
fn seq_memo_replay_equals_plain_access_walk() {
    use hyperplane::mem::{AccessKind, Addr, CoreId, MemSystem, MemSystemConfig, SeqMemo};

    let mut rng = SmallRng::seed_from_u64(0xBEEF_000D);
    for _case in 0..40 {
        let cfg = MemSystemConfig::cmp(4);
        let mut memoized = MemSystem::new(cfg);
        let mut plain = MemSystem::new(cfg);
        let core = CoreId(0);
        let seq_len = rng.random_range(1..5usize);
        let seq: Vec<Addr> = (0..seq_len)
            .map(|i| Addr((0x40 + i as u64) * hyperplane::mem::LINE_BYTES))
            .collect();
        let mut memo = SeqMemo::default();
        for _round in 0..rng.random_range(2..40usize) {
            let cost_memoized = match memoized.replay_memo(&mut memo) {
                Some(c) => c.count(),
                None => {
                    memo.begin(core);
                    let mut t = 0;
                    for &a in &seq {
                        t += memoized
                            .record_access(&mut memo, core, a, AccessKind::Load)
                            .latency
                            .count();
                    }
                    memoized.seal_memo(&mut memo);
                    t
                }
            };
            let cost_plain: u64 = seq
                .iter()
                .map(|&a| plain.access(core, a, AccessKind::Load).latency.count())
                .sum();
            assert_eq!(cost_memoized, cost_plain, "replay mispriced the walk");
            if rng.random_range(0..4u8) == 0 {
                // Remote store to a recorded line: invalidates core 0's
                // copy, bumps its epoch, and must break the memo.
                let victim = seq[rng.random_range(0..seq.len())];
                let a = memoized.access(CoreId(2), victim, AccessKind::Store);
                let b = plain.access(CoreId(2), victim, AccessKind::Store);
                assert_eq!(a, b);
            }
        }
        for c in 0..4 {
            assert_eq!(
                stats_tuple(memoized.core_stats(CoreId(c))),
                stats_tuple(plain.core_stats(CoreId(c))),
                "memoized telemetry diverged on core {c}"
            );
        }
        assert_eq!(memoized.getm_total(), plain.getm_total());
        assert_eq!(memoized.invalidation_total(), plain.invalidation_total());
    }
}
