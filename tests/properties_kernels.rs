//! Property-based tests of the workload kernels and simulation primitives
//! not covered by `properties.rs`.

use hyperplane::queues::sim::{QueueId, QueueLayout};
use hyperplane::sim::event::EventQueue;
use hyperplane::sim::time::SimTime;
use hyperplane::workloads::dispatch::{Dispatcher, Request, RequestType};
use hyperplane::workloads::gf256::Gf256;
use hyperplane::workloads::packet::{build_ipv4_packet, internet_checksum, GreEncapsulator};
use hyperplane::workloads::steering::{toeplitz_hash, FlowKey, PacketSteerer, DEFAULT_RSS_KEY};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The Toeplitz hash is linear over GF(2): H(x ^ y) == H(x) ^ H(y).
    /// This is the property RSS implementations exploit for incremental
    /// flow-hash updates — and a strong structural check of our bit-level
    /// implementation.
    #[test]
    fn toeplitz_is_gf2_linear(
        x in prop::collection::vec(any::<u8>(), 12),
        y in prop::collection::vec(any::<u8>(), 12),
    ) {
        let xy: Vec<u8> = x.iter().zip(&y).map(|(a, b)| a ^ b).collect();
        let hx = toeplitz_hash(&DEFAULT_RSS_KEY, &x);
        let hy = toeplitz_hash(&DEFAULT_RSS_KEY, &y);
        let hxy = toeplitz_hash(&DEFAULT_RSS_KEY, &xy);
        prop_assert_eq!(hxy, hx ^ hy);
    }

    /// The session table behaves exactly like a HashMap model under
    /// arbitrary steer/remove interleavings (while within capacity).
    #[test]
    fn steering_matches_model(ops in prop::collection::vec((0u16..50, any::<bool>()), 1..300)) {
        let mut s = PacketSteerer::new(256, 4);
        let mut model: HashMap<u16, u16> = HashMap::new();
        for (port, is_remove) in ops {
            let flow = FlowKey {
                src_ip: [10, 0, 0, 1],
                dst_ip: [10, 0, 0, 2],
                src_port: port,
                dst_port: 80,
                protocol: 6,
            };
            if is_remove {
                let got = s.remove(&flow);
                prop_assert_eq!(got, model.remove(&port), "remove({})", port);
            } else {
                let dest = s.steer(&flow).expect("within capacity");
                match model.get(&port) {
                    Some(&d) => prop_assert_eq!(dest, d, "affinity broken for {}", port),
                    None => {
                        model.insert(port, dest);
                    }
                }
            }
            prop_assert_eq!(s.sessions(), model.len());
        }
    }

    /// GRE encapsulation roundtrips arbitrary payloads and preserves the
    /// inner bytes exactly.
    #[test]
    fn gre_roundtrip_arbitrary_payload(
        payload in prop::collection::vec(any::<u8>(), 0..1200),
        src in prop::array::uniform4(any::<u8>()),
        dst in prop::array::uniform4(any::<u8>()),
        ident in any::<u16>(),
    ) {
        let tun = GreEncapsulator::new([1; 16], [2; 16]);
        let inner = build_ipv4_packet(src, dst, ident, &payload);
        let wrapped = tun.encapsulate(&inner).expect("valid inner packet");
        let unwrapped = tun.decapsulate(&wrapped).expect("we built it");
        prop_assert_eq!(&unwrapped[..], &inner[..]);
    }

    /// Every packet built by the helper carries a verifying checksum, and
    /// any single-bit header corruption breaks it.
    #[test]
    fn checksum_detects_single_bit_flips(
        src in prop::array::uniform4(any::<u8>()),
        ident in any::<u16>(),
        bit in 0usize..(20 * 8),
    ) {
        let pkt = build_ipv4_packet(src, [8, 8, 8, 8], ident, &[0u8; 8]);
        prop_assert_eq!(internet_checksum(&pkt[..20]), 0);
        let mut bad = pkt.to_vec();
        bad[bit / 8] ^= 1 << (bit % 8);
        // Ones'-complement sums have one ambiguity: +0 / -0. Skip flips
        // that produce the alternate zero representation.
        let sum = internet_checksum(&bad[..20]);
        if bad[bit / 8] != pkt[bit / 8] {
            prop_assert!(sum != 0 || checksum_zero_alias(&pkt, &bad), "undetected corruption");
        }
    }

    /// Dispatcher: round-robin cursor is per-type — interleaving types
    /// never disturbs another type's backend sequence.
    #[test]
    fn dispatcher_cursors_are_independent(ops in prop::collection::vec(0u8..5, 1..100)) {
        let mut d = Dispatcher::new();
        for t in RequestType::ALL {
            d.register(t, 3, 100);
        }
        let mut expect: HashMap<u8, u16> = HashMap::new();
        for (i, code) in ops.iter().enumerate() {
            let rtype = RequestType::ALL[*code as usize];
            let req = Request {
                rtype,
                tenant: 1,
                correlation: i as u64,
                body: bytes::Bytes::new(),
            };
            let rpc = d.dispatch(&req.encode()).expect("registered");
            let cursor = expect.entry(*code).or_insert(0);
            prop_assert_eq!(rpc.backend, *cursor % 3);
            *cursor += 1;
        }
    }

    /// GF(2^8): (a*b)*c == a*(b*c) and Fermat a^255 == 1 for a != 0.
    #[test]
    fn gf256_algebra(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        let g = Gf256::new();
        prop_assert_eq!(g.mul(g.mul(a, b), c), g.mul(a, g.mul(b, c)));
        if a != 0 {
            prop_assert_eq!(g.pow(a, 255), 1);
        }
    }

    /// Event queue pops in nondecreasing time order with FIFO ties, for
    /// any schedule sequence.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(id > lid, "FIFO tie-break violated");
                }
            }
            last = Some((t, id));
        }
    }

    /// Queue layout: doorbell, descriptor, and buffer regions never share
    /// a cache line, for any geometry.
    #[test]
    fn layout_regions_disjoint(
        queues in 1u32..300,
        lines in 1u64..32,
        entries in 1u64..6,
    ) {
        let l = QueueLayout::new(queues, lines, entries);
        let q_probe = QueueId(queues - 1);
        let db = l.doorbell(q_probe).line();
        let desc = l.descriptor(q_probe).line();
        prop_assert_ne!(db.0, desc.0);
        for a in l.buffer_lines(q_probe, 0) {
            prop_assert_ne!(a.line().0, db.0);
            prop_assert_ne!(a.line().0, desc.0);
        }
    }
}

/// Ones'-complement checksums treat 0x0000 and 0xFFFF as the same value;
/// a flip can legitimately land on the alias.
fn checksum_zero_alias(_orig: &[u8], corrupted: &[u8]) -> bool {
    internet_checksum(&corrupted[..20]) == 0
}

/// Deterministic check: the Toeplitz linearity property composes — the
/// hash of any tuple equals the XOR of per-bit basis hashes.
#[test]
fn toeplitz_decomposes_into_bit_basis() {
    let input = [0x12u8, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0, 0x11, 0x22, 0x33, 0x44];
    let mut expect = 0u32;
    for byte in 0..12 {
        for bit in 0..8 {
            if (input[byte] >> bit) & 1 == 1 {
                let mut basis = [0u8; 12];
                basis[byte] = 1 << bit;
                expect ^= toeplitz_hash(&DEFAULT_RSS_KEY, &basis);
            }
        }
    }
    assert_eq!(toeplitz_hash(&DEFAULT_RSS_KEY, &input), expect);
}
