//! Cross-crate integration tests: the paper's qualitative claims must hold
//! end-to-end through the public facade API (small scales, so the suite
//! stays fast in debug builds).

use hyperplane::prelude::*;
use hyperplane::sim::rng::Distribution;

fn quick_cfg(workload: WorkloadKind, shape: TrafficShape, queues: u32) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(workload, shape, queues);
    cfg.target_completions = 1_500;
    cfg
}

#[test]
fn queue_scalability_claim_holds_for_every_workload() {
    // HyperPlane's SQ throughput must not degrade with queue count, while
    // spinning's must (Fig. 8's core claim) — checked per workload.
    for workload in [WorkloadKind::PacketEncap, WorkloadKind::CryptoForward] {
        let small = quick_cfg(workload, TrafficShape::SingleQueue, 2);
        let large = quick_cfg(workload, TrafficShape::SingleQueue, 600);
        let spin_ratio =
            peak_throughput(&large).throughput_tps / peak_throughput(&small).throughput_tps;
        let hp_small = small.with_notifier(Notifier::hyperplane());
        let hp_large = large.with_notifier(Notifier::hyperplane());
        let hp_ratio =
            peak_throughput(&hp_large).throughput_tps / peak_throughput(&hp_small).throughput_tps;
        assert!(
            spin_ratio < 0.6,
            "{workload:?}: spinning kept {spin_ratio} of throughput"
        );
        assert!(
            hp_ratio > 0.85,
            "{workload:?}: hyperplane kept only {hp_ratio}"
        );
    }
}

#[test]
fn tail_latency_gap_grows_with_queue_count() {
    let gaps: Vec<f64> = [10u32, 200, 800]
        .iter()
        .map(|&q| {
            let cfg = quick_cfg(WorkloadKind::PacketSteering, TrafficShape::SingleQueue, q);
            let spin = run_zero_load(&cfg);
            let hp = run_zero_load(&cfg.clone().with_notifier(Notifier::hyperplane()));
            spin.p99_latency_us() / hp.p99_latency_us()
        })
        .collect();
    assert!(
        gaps[2] > gaps[0],
        "tail-latency advantage should grow with queues: {gaps:?}"
    );
    assert!(gaps[2] > 4.0, "large-queue tail gap too small: {gaps:?}");
}

#[test]
fn spinning_beats_power_optimized_hyperplane_only_at_few_queues() {
    // Paper §V-B: with C1's ~0.5us wake, spinning wins below ~6 queues.
    let few = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::SingleQueue, 1);
    let many = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::SingleQueue, 300);
    let spin_few = run_zero_load(&few).mean_latency_us();
    let c1_few = run_zero_load(&few.clone().with_notifier(Notifier::hyperplane_power_opt()))
        .mean_latency_us();
    let spin_many = run_zero_load(&many).mean_latency_us();
    let c1_many = run_zero_load(&many.clone().with_notifier(Notifier::hyperplane_power_opt()))
        .mean_latency_us();
    assert!(
        spin_few < c1_few,
        "at 1 queue spinning should react faster ({spin_few} vs {c1_few})"
    );
    assert!(
        c1_many < spin_many,
        "at 300 queues C1 HyperPlane should win ({c1_many} vs {spin_many})"
    );
}

#[test]
fn scale_up_spinning_loses_to_scale_out_spinning() {
    // Paper §V-C: synchronization + ping-pong make spinning scale-up
    // unattractive.
    let mut base = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 80);
    base.target_completions = 3_000;
    let so = peak_throughput(&base.clone().with_cores(4, 1));
    let su = peak_throughput(&base.clone().with_cores(4, 4));
    assert!(
        su.throughput_tps < so.throughput_tps,
        "scale-up spinning {} should lose to scale-out {}",
        su.throughput_tps,
        so.throughput_tps
    );
}

#[test]
fn scale_up_hyperplane_does_not_collapse() {
    let mut base = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 80)
        .with_notifier(Notifier::hyperplane());
    base.target_completions = 3_000;
    let so = peak_throughput(&base.clone().with_cores(4, 1));
    let su = peak_throughput(&base.clone().with_cores(4, 4));
    assert!(
        su.throughput_tps > 0.9 * so.throughput_tps,
        "hyperplane scale-up {} vs scale-out {}",
        su.throughput_tps,
        so.throughput_tps
    );
}

#[test]
fn imbalance_hurts_scale_out_but_not_scale_up() {
    let mk = |cluster: usize, imbalance: f64, notifier: Notifier| {
        let mut cfg = quick_cfg(
            WorkloadKind::RequestDispatch,
            TrafficShape::ProportionallyConcentrated,
            120,
        )
        .with_cores(4, cluster)
        .with_notifier(notifier);
        cfg.imbalance = imbalance;
        cfg.target_completions = 3_000;
        cfg
    };
    // HyperPlane scale-up is immune to static imbalance by construction
    // (all queues visible to all cores).
    let hp_su = peak_throughput(&mk(4, 0.0, Notifier::hyperplane()));
    let hp_so_imb = peak_throughput(&mk(1, 0.10, Notifier::hyperplane()));
    assert!(
        hp_su.throughput_tps > hp_so_imb.throughput_tps,
        "scale-up {} should beat imbalanced scale-out {}",
        hp_su.throughput_tps,
        hp_so_imb.throughput_tps
    );
}

#[test]
fn work_proportionality_ipc_tracks_load() {
    let cfg = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 64)
        .with_notifier(Notifier::hyperplane());
    let peak = peak_throughput(&cfg).throughput_tps;
    let low = run_at_load(&cfg, peak, 0.2).aggregate_telemetry().ipc();
    let high = run_at_load(&cfg, peak, 0.8).aggregate_telemetry().ipc();
    assert!(
        high > 2.0 * low,
        "HyperPlane IPC should grow with load: {low} -> {high}"
    );
}

#[test]
fn spinning_ipc_is_disproportionate() {
    let cfg = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 64);
    let peak = peak_throughput(&cfg).throughput_tps;
    let low = run_at_load(&cfg, peak, 0.1).aggregate_telemetry();
    let high = run_at_load(&cfg, peak, 0.9).aggregate_telemetry();
    // At low load almost everything is spin; at high load useful work
    // dominates.
    assert!(low.spin_ipc() > low.useful_ipc());
    assert!(high.useful_ipc() > high.spin_ipc());
    // Total IPC at low load is higher (the paper's "full-tilt spinning").
    assert!(low.ipc() > high.useful_ipc());
}

#[test]
fn energy_proportionality_power_ordering() {
    let model = PowerModel::default();
    let cfg = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 64);
    let spin_zero = run_zero_load(&cfg).average_power_fraction(&model);
    let spin_sat = peak_throughput(&cfg).average_power_fraction(&model);
    let hp_zero = run_zero_load(&cfg.clone().with_notifier(Notifier::hyperplane()))
        .average_power_fraction(&model);
    let c1_zero = run_zero_load(&cfg.clone().with_notifier(Notifier::hyperplane_power_opt()))
        .average_power_fraction(&model);
    // Paper Fig. 12(a): spinning burns more at zero load than saturation;
    // HyperPlane idles low; C1 idles lowest (~16%).
    assert!(
        spin_zero > spin_sat,
        "spin zero {spin_zero} vs sat {spin_sat}"
    );
    assert!(
        hp_zero < 0.6 * spin_zero,
        "hp zero {hp_zero} vs spin zero {spin_zero}"
    );
    assert!(c1_zero < hp_zero, "c1 {c1_zero} vs hp {hp_zero}");
    assert!(
        c1_zero < 0.25,
        "c1 zero-load power {c1_zero} (paper: 16.2%)"
    );
}

#[test]
fn service_time_variability_worsens_scale_out_tails() {
    // HoL blocking: high-CV service hurts scale-out more than scale-up
    // (paper §II-B's head-of-line argument).
    let mk = |cluster: usize, dist: Distribution| {
        let mut cfg = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 64)
            .with_cores(4, cluster)
            .with_notifier(Notifier::hyperplane());
        cfg.service_dist = dist;
        cfg.target_completions = 4_000;
        cfg
    };
    let hicv = Distribution::HyperExp { cv: 4.0 };
    let ref_tps = peak_throughput(&mk(4, Distribution::Exponential)).throughput_tps;
    let so = run_at_load(&mk(1, hicv), ref_tps, 0.55);
    let su = run_at_load(&mk(4, hicv), ref_tps, 0.55);
    assert!(
        su.p99_latency_us() < so.p99_latency_us(),
        "scale-up p99 {} should beat scale-out p99 {} under CV=4",
        su.p99_latency_us(),
        so.p99_latency_us()
    );
}

#[test]
fn batching_helps_under_backlog() {
    let mut one = quick_cfg(
        WorkloadKind::RequestDispatch,
        TrafficShape::SingleQueue,
        200,
    );
    one.target_completions = 3_000;
    let mut batched = one.clone();
    batched.batch = 8;
    let t1 = peak_throughput(&one).throughput_tps;
    let t8 = peak_throughput(&batched).throughput_tps;
    assert!(
        t8 > t1,
        "batch=8 ({t8}) should beat batch=1 ({t1}) at saturation"
    );
}

#[test]
fn wrr_weights_differentiate_per_tenant_latency() {
    use hyperplane::device::qwait::HyperPlaneConfig;
    use hyperplane::device::ready_set::ServicePolicy;
    // Premium tenant (queue 0) gets weight 8; others weight 1. Under load,
    // its latency must be clearly lower than the best-effort queues'.
    let mut cfg = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 8)
        .with_notifier(Notifier::hyperplane());
    cfg.target_completions = 8_000;
    let peak = peak_throughput(&cfg).throughput_tps;
    let mut weights = vec![1u32; cfg.hp.ready_qids];
    weights[0] = 8;
    cfg.hp = HyperPlaneConfig {
        policy: ServicePolicy::WeightedRoundRobin { weights },
        ..cfg.hp.clone()
    };
    let r = run_at_load(&cfg, peak, 0.85);
    let lat = r.per_queue_latency_us();
    let q0 = lat
        .iter()
        .find(|&&(q, _, _)| q == 0)
        .expect("queue 0 completed work")
        .2;
    let others: Vec<f64> = lat
        .iter()
        .filter(|&&(q, _, _)| q != 0)
        .map(|&(_, _, us)| us)
        .collect();
    let others_mean = others.iter().sum::<f64>() / others.len() as f64;
    assert!(
        q0 < 0.7 * others_mean,
        "premium queue latency {q0} us vs best-effort mean {others_mean} us"
    );
}

#[test]
fn work_stealing_activates_remote_socket() {
    let mut cfg = quick_cfg(WorkloadKind::CryptoForward, TrafficShape::SingleQueue, 16)
        .with_cores(4, 2)
        .with_notifier(Notifier::hyperplane());
    cfg.target_completions = 2_500;
    let partitioned = peak_throughput(&cfg);
    cfg.work_stealing = true;
    let stealing = peak_throughput(&cfg);
    assert!(
        stealing.throughput_tps > 1.4 * partitioned.throughput_tps,
        "stealing {} vs partitioned {}",
        stealing.throughput_tps,
        partitioned.throughput_tps
    );
}

#[test]
fn results_are_reproducible_with_seed() {
    let cfg = quick_cfg(
        WorkloadKind::ErasureCoding,
        TrafficShape::NonproportionallyConcentrated,
        150,
    )
    .with_notifier(Notifier::hyperplane())
    .with_seed(777);
    let a = peak_throughput(&cfg);
    let b = peak_throughput(&cfg);
    assert_eq!(a.throughput_tps, b.throughput_tps);
    assert_eq!(a.latency_cycles.count(), b.latency_cycles.count());
    assert_eq!(a.p99_latency_us(), b.p99_latency_us());
}

#[test]
fn different_seeds_give_statistically_close_throughput() {
    let t: Vec<f64> = [1u64, 2, 3]
        .iter()
        .map(|&s| {
            let cfg = quick_cfg(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 32)
                .with_notifier(Notifier::hyperplane())
                .with_seed(s);
            peak_throughput(&cfg).throughput_tps
        })
        .collect();
    let mean = t.iter().sum::<f64>() / t.len() as f64;
    for &x in &t {
        assert!(
            (x - mean).abs() / mean < 0.15,
            "seed variance too high: {t:?}"
        );
    }
}
