//! Protocol-level tests of Algorithm 1: no lost wake-ups, no phantom
//! grants, under randomized producer/consumer interleavings against the
//! HyperPlane device.
//!
//! The paper's correctness argument (§III-B) rests on the atomicity of
//! QWAIT-VERIFY / QWAIT-RECONSIDER and the GetS re-arm probe. These tests
//! drive the device with adversarial schedules and check the liveness and
//! safety invariants directly.

use hyperplane::prelude::*;
use hyperplane::sim::rng::splitmix64;
use std::collections::VecDeque;

/// A minimal "queue + doorbell + device" harness where arrivals and the
/// consumer loop interleave in an arbitrary order.
struct Harness {
    dev: HyperPlaneDevice,
    layout: QueueLayout,
    depths: Vec<VecDeque<u64>>,
    enqueued: u64,
    dequeued: u64,
}

impl Harness {
    fn new(queues: u32) -> Self {
        let layout = QueueLayout::new(queues, 1, 1);
        let mut dev = HyperPlaneDevice::new(HyperPlaneConfig::table1(), layout.doorbell_range());
        for q in 0..queues {
            dev.qwait_add(QueueId(q), layout.doorbell(QueueId(q)).line())
                .unwrap();
        }
        Harness {
            dev,
            layout,
            depths: vec![VecDeque::new(); queues as usize],
            enqueued: 0,
            dequeued: 0,
        }
    }

    /// Producer: enqueue one item and ring the doorbell (a GetM the
    /// monitoring set sees).
    fn produce(&mut self, q: u32) {
        self.depths[q as usize].push_back(self.enqueued);
        self.enqueued += 1;
        self.dev.snoop_getm(self.layout.doorbell(QueueId(q)).line());
    }

    /// Consumer: one full Algorithm-1 iteration. Returns the dequeued item
    /// if any.
    fn consume_once(&mut self) -> Option<u64> {
        let qid = self.dev.qwait_select()?;
        let qi = qid.0 as usize;
        let depth = self.depths[qi].len() as u64;
        let (ready, _action) = self.dev.qwait_verify(qid, depth);
        if !ready {
            return None;
        }
        let item = self.depths[qi].pop_front().expect("verify said non-empty");
        self.dequeued += 1;
        let _ = self.dev.qwait_reconsider(qid, self.depths[qi].len() as u64);
        Some(item)
    }

    fn drain(&mut self) -> u64 {
        // A bounded loop: each iteration either dequeues or proves empty.
        for _ in 0..100_000 {
            if self.consume_once().is_none() && self.dev.ready_count() == 0 {
                break;
            }
        }
        self.dequeued
    }
}

#[test]
fn every_item_is_eventually_serviced_random_interleavings() {
    for seed in 0..20u64 {
        let queues = 1 + (splitmix64(seed) % 32) as u32;
        let mut h = Harness::new(queues);
        let mut produced = 0u64;
        // Random interleaving of produce/consume steps.
        for step in 0..2_000u64 {
            let r = splitmix64(seed * 1_000_003 + step);
            if !r.is_multiple_of(3) {
                h.produce((r % queues as u64) as u32);
                produced += 1;
            } else {
                let _ = h.consume_once();
            }
        }
        let drained = h.drain();
        assert_eq!(
            drained, produced,
            "seed {seed}: lost wake-up — items stranded"
        );
        assert!(
            h.depths.iter().all(|d| d.is_empty()),
            "seed {seed}: queue not drained"
        );
    }
}

#[test]
fn burst_arrivals_before_service_do_not_duplicate_grants() {
    let mut h = Harness::new(4);
    // 100 arrivals to one queue while the consumer never runs: only ONE
    // activation may exist (the monitoring entry disarms after the first).
    for _ in 0..100 {
        h.produce(2);
    }
    assert_eq!(h.dev.ready_count(), 1, "one activation per arm cycle");
    // The consumer loop still drains all 100 via RECONSIDER re-activation.
    assert_eq!(h.drain(), 100);
}

#[test]
fn spurious_wakeup_is_filtered_and_rearmed() {
    let mut h = Harness::new(2);
    // Ring the doorbell without enqueuing an item (e.g. a false-sharing
    // write in the same line).
    h.dev.snoop_getm(h.layout.doorbell(QueueId(1)).line());
    assert_eq!(h.consume_once(), None, "VERIFY must reject the empty queue");
    assert_eq!(h.dev.spurious_wakeups(), 1);
    // The queue was re-armed: a real arrival still gets noticed.
    h.produce(1);
    assert_eq!(h.consume_once(), Some(0));
}

#[test]
fn verify_then_arrival_race_is_safe() {
    // The dangerous window: queue tests empty, and an item arrives just
    // before re-arm. In hardware the atomic VERIFY prevents the loss; in
    // the harness, the equivalent schedule is: spurious wake, re-arm,
    // arrival. The arrival must wake the queue again.
    let mut h = Harness::new(1);
    h.dev.snoop_getm(h.layout.doorbell(QueueId(0)).line()); // spurious
    assert_eq!(h.consume_once(), None); // re-arms inside VERIFY
    h.produce(0); // the racing arrival
    assert_eq!(
        h.consume_once(),
        Some(0),
        "arrival after re-arm must not be lost"
    );
}

#[test]
fn disabled_queue_items_wait_but_survive() {
    let mut h = Harness::new(3);
    h.produce(0);
    h.produce(1);
    h.dev.qwait_disable(QueueId(0));
    // Only queue 1 can be granted.
    let got = h.consume_once().expect("queue 1 ready");
    assert_eq!(got, 1, "item 1 (queue 1) services first");
    assert!(h.consume_once().is_none(), "queue 0 is masked");
    h.dev.qwait_enable(QueueId(0));
    assert_eq!(
        h.consume_once(),
        Some(0),
        "unmasked queue serves its backlog"
    );
}
