//! Cross-crate tests of the observability plane: tracing and windowed
//! metrics must be pure observers (bit-identical results with them on or
//! off), the Chrome export must carry complete lifecycle spans, window
//! timestamps must be monotonic, and zero-sample runs must report honest
//! sentinels instead of fabricated zeros.

use hyperplane::prelude::*;
use hyperplane::sdp::runner;
use hyperplane::sim::faults::FaultPlan;
use hyperplane::sim::trace::TraceKind;
use std::collections::HashSet;

fn base(notifier: Notifier) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 64)
        .with_notifier(notifier)
        .with_seed(0x0B5E_41E5);
    cfg.target_completions = 2_000;
    cfg
}

/// A digest of everything the simulation itself computes. Two runs with
/// the same seed must agree on every bit of this, whether or not the
/// observability plane is attached.
fn digest(r: &ExperimentResult) -> Vec<u64> {
    let mut d = vec![
        r.throughput_tps.to_bits(),
        r.offered_tps.to_bits(),
        r.completions,
        r.drops,
        r.end.since_start().count(),
        r.mean_latency_us().to_bits(),
        r.latency_percentile_us(50.0).to_bits(),
        r.latency_percentile_us(99.0).to_bits(),
        r.mean_notification_us().to_bits(),
    ];
    for c in &r.per_core {
        d.extend([
            c.useful_instructions,
            c.spin_instructions,
            c.background_instructions,
            c.active_cycles,
            c.halt_c0_cycles,
            c.halt_c1_cycles,
            c.completions,
            c.empty_polls,
            c.spurious,
            c.qwait_timeouts,
            c.recoveries,
        ]);
    }
    d
}

/// The determinism pin: tracing and windowed metrics consume no RNG draws
/// and schedule no events, so a traced run is bit-identical to a bare one.
#[test]
fn tracing_does_not_perturb_results() {
    for notifier in [Notifier::hyperplane(), Notifier::Spinning] {
        let bare = runner::run(base(notifier));
        let traced = runner::run(
            base(notifier)
                .with_trace(16_384)
                .with_metrics_window(100_000),
        );
        assert_eq!(
            digest(&bare),
            digest(&traced),
            "observability perturbed the {} simulation",
            notifier.label()
        );
        assert!(traced.trace_records().is_some_and(|t| !t.is_empty()));
        assert!(!traced.windows().is_empty());
        assert!(bare.trace_records().is_none());
        assert!(bare.windows().is_empty());
    }
}

/// The Chrome export contains at least one complete enqueue→service
/// lifecycle span (a `ph:"b"`/`ph:"e"` pair with the same id) and the
/// top-level structure chrome://tracing and Perfetto expect.
#[test]
fn chrome_export_has_complete_lifecycle_spans() {
    // Drive well below capacity so nearly every enqueued item is serviced
    // within the run (at saturation most lifecycle spans stay open).
    let mut cfg = base(Notifier::hyperplane()).with_trace(16_384);
    let rate = cfg.capacity_estimate_per_core() * cfg.dp_cores as f64 * 0.3;
    cfg = cfg.with_load(Load::RatePerSec(rate));
    let r = runner::run(cfg);
    let json = r.chrome_trace_json().expect("tracing enabled");
    assert!(
        json.starts_with("{\"traceEvents\":["),
        "bad envelope: {}",
        &json[..40]
    );
    assert!(json.contains("\"displayTimeUnit\""));

    // Find an item with both an enqueue and a service-done in the kept
    // records — a complete lifecycle — and check both async edges made it
    // into the export.
    let records = r.trace_records().expect("records kept");
    let enqueued: HashSet<u64> = records
        .iter()
        .filter_map(|rec| match rec.kind {
            TraceKind::Enqueue { item, .. } => Some(item),
            _ => None,
        })
        .collect();
    let complete = records
        .iter()
        .filter_map(|rec| match rec.kind {
            TraceKind::ServiceDone { item, .. } if enqueued.contains(&item) => Some(item),
            _ => None,
        })
        .next()
        .expect("at least one complete enqueue->service lifecycle");
    assert!(json.contains(&format!("\"ph\":\"b\",\"id\":{complete},")));
    assert!(json.contains(&format!("\"ph\":\"e\",\"id\":{complete},")));

    // Instant events carry the event taxonomy.
    for name in ["enqueue", "doorbell-write", "dequeue", "service-done"] {
        assert!(
            json.contains(&format!("\"name\":\"{name}\"")),
            "missing {name} events"
        );
    }
}

/// Per-window metrics have strictly increasing end timestamps and
/// contiguous nominal boundaries, and the JSONL sink emits one object per
/// window.
#[test]
fn metrics_windows_are_monotonic_and_contiguous() {
    let r = runner::run(base(Notifier::hyperplane()).with_metrics_window(50_000));
    let windows = r.windows();
    assert!(
        windows.len() >= 2,
        "expected several windows, got {}",
        windows.len()
    );
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.index as usize, i);
        assert!(w.end > w.start, "window {i} is empty-range");
        if i > 0 {
            assert_eq!(w.start, windows[i - 1].end, "window {i} not contiguous");
        }
    }
    let total: u64 = windows.iter().map(|w| w.completions).sum();
    assert!(
        total >= r.completions,
        "windows lost completions: {total} < {}",
        r.completions
    );

    let jsonl = r.metrics_jsonl();
    assert_eq!(jsonl.lines().count(), windows.len());
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
}

/// A run that completes nothing (every doorbell dropped, no recovery
/// timeout) reports NaN/None rather than a misleading zero latency.
#[test]
fn zero_sample_run_reports_sentinels() {
    let mut cfg = base(Notifier::hyperplane()).with_faults(FaultPlan {
        doorbell_drop: 1.0,
        ..FaultPlan::none()
    });
    cfg.target_completions = 100;
    cfg.max_cycles = 2_000_000;
    let r = runner::run(cfg);
    assert_eq!(r.completions, 0, "drops should have starved the run");
    assert!(r.mean_latency_us().is_nan());
    assert!(r.latency_percentile_us(99.0).is_nan());
    assert!(r.mean_notification_us().is_nan());
    assert_eq!(r.try_mean_latency_us(), None);
    assert_eq!(r.try_latency_percentile_us(99.0), None);
    assert_eq!(r.try_mean_notification_us(), None);
}

/// The memory-system fast path (DESIGN.md §12: MRU filter, stable-state
/// short-circuit, memoized sequences — plus batched arrival generation)
/// is bit-invisible at the experiment level. Same seed, fast path on vs
/// off, across the notifier styles and a Fig. 10-style multicore
/// imbalanced variant: every digest bit must agree.
#[test]
fn mem_fast_path_is_bit_identical_across_configs() {
    let mut fig10 = ExperimentConfig::new(
        WorkloadKind::PacketEncap,
        TrafficShape::ProportionallyConcentrated,
        400,
    )
    .with_cores(4, 1)
    .with_notifier(Notifier::hyperplane())
    .with_seed(0x0B5E_41E5);
    fig10.imbalance = 0.10;
    fig10.target_completions = 2_000;

    for cfg in [
        base(Notifier::Spinning),
        base(Notifier::hyperplane()),
        fig10,
    ] {
        let fast = runner::run(cfg.clone());
        let mut slow_cfg = cfg.clone();
        slow_cfg.mem_fast_path = false;
        let slow = runner::run(slow_cfg);
        assert_eq!(
            digest(&fast),
            digest(&slow),
            "fast path perturbed the {} / {} simulation",
            cfg.notifier.label(),
            cfg.shape.label()
        );
        let fp = fast.fastpath_stats();
        let sp = slow.fastpath_stats();
        // The knob gates the MRU filter and memo replay; the stable-state
        // short-circuit is structural and counts on both paths.
        assert_eq!(
            (sp.mru_hits, sp.seq_replays),
            (0, 0),
            "disabled fast path still fired"
        );
        assert!(
            fp.mru_hits + fp.stable_hits > 0,
            "enabled fast path never fired on {}",
            cfg.notifier.label()
        );
    }
}

/// Same-cycle batch popping (DESIGN.md §13: one `pop_batch` drains a whole
/// same-instant event run instead of a pop per event) is bit-invisible:
/// same seed, `batch_pop` on vs off, across the notifier styles and the
/// Fig. 10-style imbalanced multicore variant, every digest bit agrees —
/// including with `mem_fast_path` toggled off at the same time, so the two
/// knobs cannot mask each other's effects.
#[test]
fn batch_pop_is_bit_identical_across_configs() {
    let mut fig10 = ExperimentConfig::new(
        WorkloadKind::PacketEncap,
        TrafficShape::ProportionallyConcentrated,
        400,
    )
    .with_cores(4, 1)
    .with_notifier(Notifier::hyperplane())
    .with_seed(0x0B5E_41E5);
    fig10.imbalance = 0.10;
    fig10.target_completions = 2_000;

    for cfg in [
        base(Notifier::Spinning),
        base(Notifier::hyperplane()),
        fig10,
    ] {
        let batched = runner::run(cfg.clone());
        let mut single_cfg = cfg.clone();
        single_cfg.batch_pop = false;
        let single = runner::run(single_cfg);
        assert_eq!(
            digest(&batched),
            digest(&single),
            "batch pop perturbed the {} / {} simulation",
            cfg.notifier.label(),
            cfg.shape.label()
        );

        let mut bare_cfg = cfg.clone();
        bare_cfg.batch_pop = false;
        bare_cfg.mem_fast_path = false;
        let bare = runner::run(bare_cfg);
        assert_eq!(
            digest(&batched),
            digest(&bare),
            "batch pop + mem fast path jointly perturbed the {} / {} simulation",
            cfg.notifier.label(),
            cfg.shape.label()
        );
    }
}
