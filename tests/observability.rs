//! Cross-crate tests of the observability plane: tracing, windowed
//! metrics, and latency attribution must be pure observers (bit-identical
//! results with them on or off), the Chrome export must carry complete
//! lifecycle spans, window timestamps must be monotonic, zero-sample runs
//! must report honest sentinels instead of fabricated zeros, and
//! attributed phase components must sum exactly to end-to-end latency —
//! including under fault recovery and full chaos.

use hyperplane::prelude::*;
use hyperplane::sdp::runner;
use hyperplane::sim::faults::FaultPlan;
use hyperplane::sim::trace::TraceKind;
use std::collections::HashSet;

fn base(notifier: Notifier) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 64)
        .with_notifier(notifier)
        .with_seed(0x0B5E_41E5);
    cfg.target_completions = 2_000;
    cfg
}

/// A digest of everything the simulation itself computes. Two runs with
/// the same seed must agree on every bit of this, whether or not the
/// observability plane is attached.
fn digest(r: &ExperimentResult) -> Vec<u64> {
    let mut d = vec![
        r.throughput_tps.to_bits(),
        r.offered_tps.to_bits(),
        r.completions,
        r.drops,
        r.end.since_start().count(),
        r.mean_latency_us().to_bits(),
        r.latency_percentile_us(50.0).to_bits(),
        r.latency_percentile_us(99.0).to_bits(),
        r.mean_notification_us().to_bits(),
    ];
    for c in &r.per_core {
        d.extend([
            c.useful_instructions,
            c.spin_instructions,
            c.background_instructions,
            c.active_cycles,
            c.halt_c0_cycles,
            c.halt_c1_cycles,
            c.completions,
            c.empty_polls,
            c.spurious,
            c.qwait_timeouts,
            c.recoveries,
        ]);
    }
    d
}

/// The determinism pin: tracing and windowed metrics consume no RNG draws
/// and schedule no events, so a traced run is bit-identical to a bare one.
#[test]
fn tracing_does_not_perturb_results() {
    for notifier in [Notifier::hyperplane(), Notifier::Spinning] {
        let bare = runner::run(base(notifier));
        let traced = runner::run(
            base(notifier)
                .with_trace(16_384)
                .with_metrics_window(100_000),
        );
        assert_eq!(
            digest(&bare),
            digest(&traced),
            "observability perturbed the {} simulation",
            notifier.label()
        );
        assert!(traced.trace_records().is_some_and(|t| !t.is_empty()));
        assert!(!traced.windows().is_empty());
        assert!(bare.trace_records().is_none());
        assert!(bare.windows().is_empty());
    }
}

/// The Chrome export contains at least one complete enqueue→service
/// lifecycle span (a `ph:"b"`/`ph:"e"` pair with the same id) and the
/// top-level structure chrome://tracing and Perfetto expect.
#[test]
fn chrome_export_has_complete_lifecycle_spans() {
    // Drive well below capacity so nearly every enqueued item is serviced
    // within the run (at saturation most lifecycle spans stay open).
    let mut cfg = base(Notifier::hyperplane()).with_trace(16_384);
    let rate = cfg.capacity_estimate_per_core() * cfg.dp_cores as f64 * 0.3;
    cfg = cfg.with_load(Load::RatePerSec(rate));
    let r = runner::run(cfg);
    let json = r.chrome_trace_json().expect("tracing enabled");
    assert!(
        json.starts_with("{\"traceEvents\":["),
        "bad envelope: {}",
        &json[..40]
    );
    assert!(json.contains("\"displayTimeUnit\""));

    // Find an item with both an enqueue and a service-done in the kept
    // records — a complete lifecycle — and check both async edges made it
    // into the export.
    let records = r.trace_records().expect("records kept");
    let enqueued: HashSet<u64> = records
        .iter()
        .filter_map(|rec| match rec.kind {
            TraceKind::Enqueue { item, .. } => Some(item),
            _ => None,
        })
        .collect();
    let complete = records
        .iter()
        .filter_map(|rec| match rec.kind {
            TraceKind::ServiceDone { item, .. } if enqueued.contains(&item) => Some(item),
            _ => None,
        })
        .next()
        .expect("at least one complete enqueue->service lifecycle");
    assert!(json.contains(&format!("\"ph\":\"b\",\"id\":{complete},")));
    assert!(json.contains(&format!("\"ph\":\"e\",\"id\":{complete},")));

    // Instant events carry the event taxonomy.
    for name in ["enqueue", "doorbell-write", "dequeue", "service-done"] {
        assert!(
            json.contains(&format!("\"name\":\"{name}\"")),
            "missing {name} events"
        );
    }
}

/// Per-window metrics have strictly increasing end timestamps and
/// contiguous nominal boundaries, and the JSONL sink emits one object per
/// window.
#[test]
fn metrics_windows_are_monotonic_and_contiguous() {
    let r = runner::run(base(Notifier::hyperplane()).with_metrics_window(50_000));
    let windows = r.windows();
    assert!(
        windows.len() >= 2,
        "expected several windows, got {}",
        windows.len()
    );
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.index as usize, i);
        assert!(w.end > w.start, "window {i} is empty-range");
        if i > 0 {
            assert_eq!(w.start, windows[i - 1].end, "window {i} not contiguous");
        }
    }
    let total: u64 = windows.iter().map(|w| w.completions).sum();
    assert!(
        total >= r.completions,
        "windows lost completions: {total} < {}",
        r.completions
    );

    let jsonl = r.metrics_jsonl();
    assert_eq!(jsonl.lines().count(), windows.len());
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
}

/// A run that completes nothing (every doorbell dropped, no recovery
/// timeout) reports NaN/None rather than a misleading zero latency.
#[test]
fn zero_sample_run_reports_sentinels() {
    let mut cfg = base(Notifier::hyperplane()).with_faults(FaultPlan {
        doorbell_drop: 1.0,
        ..FaultPlan::none()
    });
    cfg.target_completions = 100;
    cfg.max_cycles = 2_000_000;
    let r = runner::run(cfg);
    assert_eq!(r.completions, 0, "drops should have starved the run");
    assert!(r.mean_latency_us().is_nan());
    assert!(r.latency_percentile_us(99.0).is_nan());
    assert!(r.mean_notification_us().is_nan());
    assert_eq!(r.try_mean_latency_us(), None);
    assert_eq!(r.try_latency_percentile_us(99.0), None);
    assert_eq!(r.try_mean_notification_us(), None);
}

/// The memory-system fast path (DESIGN.md §12: MRU filter, stable-state
/// short-circuit, memoized sequences — plus batched arrival generation)
/// is bit-invisible at the experiment level. Same seed, fast path on vs
/// off, across the notifier styles and a Fig. 10-style multicore
/// imbalanced variant: every digest bit must agree.
#[test]
fn mem_fast_path_is_bit_identical_across_configs() {
    let mut fig10 = ExperimentConfig::new(
        WorkloadKind::PacketEncap,
        TrafficShape::ProportionallyConcentrated,
        400,
    )
    .with_cores(4, 1)
    .with_notifier(Notifier::hyperplane())
    .with_seed(0x0B5E_41E5);
    fig10.imbalance = 0.10;
    fig10.target_completions = 2_000;

    for cfg in [
        base(Notifier::Spinning),
        base(Notifier::hyperplane()),
        fig10,
    ] {
        let fast = runner::run(cfg.clone());
        let mut slow_cfg = cfg.clone();
        slow_cfg.mem_fast_path = false;
        let slow = runner::run(slow_cfg);
        assert_eq!(
            digest(&fast),
            digest(&slow),
            "fast path perturbed the {} / {} simulation",
            cfg.notifier.label(),
            cfg.shape.label()
        );
        let fp = fast.fastpath_stats();
        let sp = slow.fastpath_stats();
        // The knob gates the MRU filter and memo replay; the stable-state
        // short-circuit is structural and counts on both paths.
        assert_eq!(
            (sp.mru_hits, sp.seq_replays),
            (0, 0),
            "disabled fast path still fired"
        );
        assert!(
            fp.mru_hits + fp.stable_hits > 0,
            "enabled fast path never fired on {}",
            cfg.notifier.label()
        );
    }
}

/// Same-cycle batch popping (DESIGN.md §13: one `pop_batch` drains a whole
/// same-instant event run instead of a pop per event) is bit-invisible:
/// same seed, `batch_pop` on vs off, across the notifier styles and the
/// Fig. 10-style imbalanced multicore variant, every digest bit agrees —
/// including with `mem_fast_path` toggled off at the same time, so the two
/// knobs cannot mask each other's effects.
#[test]
fn batch_pop_is_bit_identical_across_configs() {
    let mut fig10 = ExperimentConfig::new(
        WorkloadKind::PacketEncap,
        TrafficShape::ProportionallyConcentrated,
        400,
    )
    .with_cores(4, 1)
    .with_notifier(Notifier::hyperplane())
    .with_seed(0x0B5E_41E5);
    fig10.imbalance = 0.10;
    fig10.target_completions = 2_000;

    for cfg in [
        base(Notifier::Spinning),
        base(Notifier::hyperplane()),
        fig10,
    ] {
        let batched = runner::run(cfg.clone());
        let mut single_cfg = cfg.clone();
        single_cfg.batch_pop = false;
        let single = runner::run(single_cfg);
        assert_eq!(
            digest(&batched),
            digest(&single),
            "batch pop perturbed the {} / {} simulation",
            cfg.notifier.label(),
            cfg.shape.label()
        );

        let mut bare_cfg = cfg.clone();
        bare_cfg.batch_pop = false;
        bare_cfg.mem_fast_path = false;
        let bare = runner::run(bare_cfg);
        assert_eq!(
            digest(&batched),
            digest(&bare),
            "batch pop + mem fast path jointly perturbed the {} / {} simulation",
            cfg.notifier.label(),
            cfg.shape.label()
        );
    }
}

/// The attribution pin: the streaming attributor consumes no RNG draws
/// and schedules no events, so a same-seed run is bit-identical with
/// attribution on or off — and with it on, every completed chain's phase
/// components sum exactly to the measured end-to-end total.
#[test]
fn attribution_is_a_pure_observer_and_conserves() {
    use hyperplane::sim::attrib::Phase;
    for notifier in [Notifier::hyperplane(), Notifier::Spinning] {
        let bare = runner::run(base(notifier));
        let attributed = runner::run(base(notifier).with_attrib());
        assert_eq!(
            digest(&bare),
            digest(&attributed),
            "attribution perturbed the {} simulation",
            notifier.label()
        );
        assert!(bare.attrib_report().is_none());
        let a = attributed.attrib_report().expect("attribution enabled");
        assert!(a.completed > 0);
        assert!(
            a.conserved(),
            "{}: phase totals do not sum to total cycles ({} violations)",
            notifier.label(),
            a.violations
        );
        let phase_sum: u64 = Phase::ALL.iter().map(|&p| a.phase_total(p)).sum();
        assert_eq!(phase_sum, a.total_cycles);
        // Every captured tail exemplar carries its own exact breakdown.
        assert!(!a.exemplars.is_empty());
        for e in &a.exemplars {
            assert_eq!(
                e.phases.iter().sum::<u64>(),
                e.latency,
                "exemplar {} phase sum != latency",
                e.item
            );
        }
        // Exemplars are the worst K, sorted worst-first.
        for pair in a.exemplars.windows(2) {
            assert!(pair[0].latency >= pair[1].latency);
        }
    }
}

/// Under a 100 % doorbell-drop plan with the QWAIT timeout armed, the
/// additivity invariant must survive fault recovery — and the recovery
/// cycles must land in the distinct `Recovery` phase, not be smeared
/// into `Delivery`.
#[test]
fn attribution_conserves_under_fault_recovery() {
    use hyperplane::sim::attrib::Phase;
    let cfg = base(Notifier::hyperplane())
        .with_attrib()
        .with_faults(FaultPlan::parse("drop=1.0").unwrap())
        .with_qwait_timeout(20_000)
        .with_watchdog(4_000_000);
    let r = runner::run(cfg);
    assert!(r.completions >= 2_000, "fault run did not finish its work");
    let f = r.fault_report().expect("faulty run carries a report");
    assert!(f.recoveries > 0, "no recovery ever happened");
    let a = r.attrib_report().expect("attribution enabled");
    assert!(
        a.conserved(),
        "conservation violated under fault recovery ({} violations)",
        a.violations
    );
    // Every doorbell was dropped: announce latency is recovery, and the
    // clean delivery phase never observed anything.
    assert!(
        a.phase_total(Phase::Recovery) > 0,
        "recovered items attributed no recovery cycles"
    );
    assert_eq!(
        a.phase_total(Phase::Delivery),
        0,
        "dropped doorbells must not count as clean delivery"
    );
    // Recovery dominated by the timeout period: its p99 should be on the
    // order of the 20k-cycle QWAIT timeout, far above clean delivery.
    let p99 = a.phase_hists[Phase::Recovery as usize]
        .percentile(99.0)
        .expect("recovery histogram has samples");
    assert!(p99 >= 1_000, "recovery p99 implausibly small: {p99}");
}

/// Full chaos — correlated bursts, a storm phase, live doorbell churn,
/// silent evictions — with attribution, audit, and tracing all attached:
/// phases still sum exactly, the run replays bit-identically, and the
/// attribution artifact is byte-stable.
#[test]
fn attribution_conserves_under_chaos() {
    use hyperplane::sim::chaos::ChaosSchedule;
    let storm = FaultPlan::parse("drop=0.5,delay=0.2,evict=0.01,spurious=0.05").unwrap();
    let mk = || {
        base(Notifier::hyperplane())
            .with_attrib()
            .with_trace(16_384)
            .with_audit()
            .with_faults(storm.scaled(0.5))
            .with_chaos(
                ChaosSchedule::none()
                    .with_burst(2_000_000, 500_000, 2.0)
                    .with_phase(3_000_000, 6_000_000, storm.clone())
                    .with_churn(2_500_000),
            )
            .with_silent_evictions()
            .with_qwait_timeout(20_000)
            .with_watchdog(4_000_000)
            .with_seed(0xC4A0_5C4A)
    };
    let r = runner::run(mk());
    assert!(r.audit_report().expect("audit enabled").ok());
    let a = r.attrib_report().expect("attribution enabled");
    assert!(
        a.conserved(),
        "conservation violated under chaos ({} violations)",
        a.violations
    );
    assert!(a.completed > 0);
    for e in &a.exemplars {
        assert_eq!(e.phases.iter().sum::<u64>(), e.latency);
    }
    // The JSON artifact replays byte-identically with the same seed.
    let r2 = runner::run(mk());
    assert_eq!(r.attrib_json(), r2.attrib_json());
}

/// The `hp-attrib-v1` artifact round-trips through the hp-bytes parser:
/// it is well-formed JSON whose headline fields match the in-memory
/// report (the contract `attrib-diff` depends on).
#[test]
fn attrib_json_parses_and_matches_report() {
    use hp_bytes::json::{parse, JsonValue};
    let r = runner::run(base(Notifier::hyperplane()).with_attrib());
    let a = r.attrib_report().expect("attribution enabled");
    let json = r.attrib_json().expect("attribution enabled");
    let doc = parse(&json).expect("artifact must parse");
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_str),
        Some("hp-attrib-v1")
    );
    assert_eq!(
        doc.get("completed").and_then(JsonValue::as_u64),
        Some(a.completed)
    );
    assert_eq!(
        doc.get("conserved").and_then(JsonValue::as_bool),
        Some(true)
    );
    let phases = doc.get("phases").and_then(JsonValue::as_array).unwrap();
    assert_eq!(phases.len(), hyperplane::sim::attrib::Phase::COUNT);
    let total: u64 = phases
        .iter()
        .map(|p| p.get("total_cycles").and_then(JsonValue::as_u64).unwrap())
        .sum();
    assert_eq!(
        doc.get("end_to_end")
            .and_then(|e| e.get("total_cycles"))
            .and_then(JsonValue::as_u64),
        Some(total),
        "serialized phase totals must sum to the serialized total"
    );
    // Exemplars carry the full fast-path counter snapshot.
    let ex = doc.get("exemplars").and_then(JsonValue::as_array).unwrap();
    assert!(!ex.is_empty());
    for e in ex {
        let fp = e.get("fast_path").expect("snapshot attached");
        for label in hyperplane::sim::attrib::SNAPSHOT_LABELS {
            assert!(fp.get(label).is_some(), "missing counter {label}");
        }
    }
}
