//! Cross-validation of the discrete-event engine against closed-form
//! queueing theory (see the `validate` harness binary for the full sweep).
//!
//! These are the repository's strongest soundness tests: in regimes with
//! textbook answers, the simulated mean sojourn must converge to theory.

use hyperplane::prelude::*;
use hyperplane::sdp::analytic;
use hyperplane::sim::rng::Distribution;

/// Crypto forwarding: 7 µs mean service dwarfs notification overhead, so
/// the engine approximates an ideal queueing station.
fn base(queues: u32) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(
        WorkloadKind::CryptoForward,
        TrafficShape::SingleQueue,
        queues,
    )
    .with_notifier(Notifier::hyperplane());
    cfg.target_completions = 25_000;
    cfg.queue_cap = 1_000_000;
    cfg
}

fn run_at_rho(mut cfg: ExperimentConfig, servers: f64, rho: f64) -> f64 {
    let lambda_per_us = servers * rho / effective_service_us(&cfg);
    cfg.load = Load::RatePerSec(lambda_per_us * 1e6);
    run(cfg).mean_latency_us()
}

/// The engine charges realistic overheads (QWAIT, verify, buffer
/// streaming, tenant notify) on top of the nominal service draw; the
/// closed forms need the *effective* service time, which the zero-load
/// mean latency measures (notification delay is negligible for
/// HyperPlane).
fn effective_service_us(cfg: &ExperimentConfig) -> f64 {
    run_zero_load(cfg).mean_latency_us()
}

#[test]
fn engine_matches_mm1_at_moderate_load() {
    let es = effective_service_us(&base(1));
    for rho in [0.4, 0.7] {
        let sim = run_at_rho(base(1), 1.0, rho);
        let theory = analytic::mm1_sojourn(rho / es, 1.0 / es);
        let rel = (sim - theory).abs() / theory;
        assert!(
            rel < 0.12,
            "rho={rho}: sim {sim:.2} vs M/M/1 {theory:.2} (rel {rel:.3})"
        );
    }
}

#[test]
fn engine_matches_md1_with_constant_service() {
    let rho = 0.7;
    let mut cfg = base(1);
    cfg.service_dist = Distribution::Constant;
    let es = effective_service_us(&cfg);
    let sim = run_at_rho(cfg, 1.0, rho);
    let theory = analytic::mg1_sojourn(rho / es, es, 0.0);
    let rel = (sim - theory).abs() / theory;
    assert!(
        rel < 0.12,
        "sim {sim:.2} vs M/D/1 {theory:.2} (rel {rel:.3})"
    );
}

#[test]
fn engine_matches_mm4_under_scale_up() {
    let rho = 0.6;
    let mut cfg = base(4).with_cores(4, 4);
    cfg.shape = TrafficShape::FullyBalanced;
    let es = effective_service_us(&cfg);
    let sim = run_at_rho(cfg, 4.0, rho);
    let theory = analytic::mmc_sojourn(4.0 * rho / es, 1.0 / es, 4);
    let rel = (sim - theory).abs() / theory;
    assert!(
        rel < 0.15,
        "sim {sim:.2} vs M/M/4 {theory:.2} (rel {rel:.3})"
    );
}

#[test]
fn heavier_tails_increase_waiting_as_pk_predicts() {
    // PK: waiting scales with (1 + scv)/2 — the simulator must reproduce
    // the *ratio* between hyperexponential and deterministic service.
    let rho = 0.7;
    let mut det = base(1);
    det.service_dist = Distribution::Constant;
    let mut hyper = base(1);
    hyper.service_dist = Distribution::HyperExp { cv: 2.0 };
    let es = effective_service_us(&det);
    let w_det = run_at_rho(det, 1.0, rho) - es;
    let w_hyper = run_at_rho(hyper, 1.0, rho) - es;
    let sim_ratio = w_hyper / w_det;
    let theory_ratio = (1.0 + 4.0) / (1.0 + 0.0); // (1+scv)/(1+0)
    let rel = (sim_ratio - theory_ratio).abs() / theory_ratio;
    assert!(
        rel < 0.25,
        "waiting ratio sim {sim_ratio:.2} vs PK {theory_ratio:.2} (rel {rel:.3})"
    );
}

#[test]
fn scale_up_advantage_emerges_in_simulation() {
    // The §II-B claim quantified: at 75% load, 4 cores sharing all queues
    // must beat 4 partitioned cores by roughly the M/M/4-vs-M/M/1 factor.
    let rho: f64 = 0.75;
    let mk = |cluster: usize| {
        let mut cfg = base(4).with_cores(4, cluster);
        cfg.shape = TrafficShape::FullyBalanced;
        cfg
    };
    let es = effective_service_us(&mk(4));
    let so = run_at_rho(mk(1), 4.0, rho);
    let su = run_at_rho(mk(4), 4.0, rho);
    let sim_adv = so / su;
    let theory_adv = analytic::scale_up_advantage(4.0 * rho / es, 1.0 / es, 4);
    assert!(
        sim_adv > 0.6 * theory_adv && sim_adv < 1.6 * theory_adv,
        "scale-up advantage sim {sim_adv:.2} vs theory {theory_adv:.2}"
    );
}
