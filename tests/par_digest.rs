//! The parallel-fabric determinism pins: a same-seed run must be
//! digest-identical to the serial engine for any worker count, across
//! notifier styles, the Fig. 10 imbalanced multicore shape, and full
//! chaos with every observer attached — plus the windowed event-queue
//! merge primitive checked against a single-queue oracle.

use hyperplane::prelude::*;
use hyperplane::sdp::config::{RngStreamMode, SyncWindow};
use hyperplane::sdp::runner;
use hyperplane::sim::chaos::ChaosSchedule;
use hyperplane::sim::event::EventQueue;
use hyperplane::sim::faults::FaultPlan;

const MODES: [RngStreamMode; 2] = [RngStreamMode::Keyed, RngStreamMode::Sequential];

/// A digest of everything the simulation itself computes (mirrors
/// `tests/observability.rs`): headline metrics plus the full per-core
/// telemetry, bit-exact.
fn digest(r: &ExperimentResult) -> Vec<u64> {
    let mut d = vec![
        r.throughput_tps.to_bits(),
        r.offered_tps.to_bits(),
        r.completions,
        r.drops,
        r.end.since_start().count(),
        r.mean_latency_us().to_bits(),
        r.latency_percentile_us(50.0).to_bits(),
        r.latency_percentile_us(99.0).to_bits(),
        r.mean_notification_us().to_bits(),
    ];
    for c in &r.per_core {
        d.extend([
            c.useful_instructions,
            c.spin_instructions,
            c.background_instructions,
            c.active_cycles,
            c.halt_c0_cycles,
            c.halt_c1_cycles,
            c.completions,
            c.empty_polls,
            c.spurious,
            c.qwait_timeouts,
            c.recoveries,
        ]);
    }
    d
}

/// Four DP cores in single-core clusters: four sharing groups, so the
/// multi-lane fabric actually engages (one group would fall back to the
/// single-lane path and the test would be vacuous).
fn base(notifier: Notifier) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 64)
        .with_cores(4, 1)
        .with_notifier(notifier)
        .with_seed(0x0B5E_41E5);
    cfg.target_completions = 2_000;
    cfg
}

/// The Fig. 10-style imbalanced variant: concentrated traffic over 400
/// queues, 10% imbalance across the four groups.
fn fig10() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(
        WorkloadKind::PacketEncap,
        TrafficShape::ProportionallyConcentrated,
        400,
    )
    .with_cores(4, 1)
    .with_notifier(Notifier::hyperplane())
    .with_seed(0x0B5E_41E5);
    cfg.imbalance = 0.10;
    cfg.target_completions = 2_000;
    cfg
}

/// Attaches every observer the engine supports.
fn observed(cfg: ExperimentConfig) -> ExperimentConfig {
    cfg.with_trace(16_384)
        .with_attrib()
        .with_audit()
        .with_metrics_window(500_000)
}

fn assert_worker_invariant(label: &str, mk: impl Fn() -> ExperimentConfig) {
    let serial = runner::run(mk().with_par_workers(1));
    let d0 = digest(&serial);
    for workers in [2, 4] {
        let par = runner::run(mk().with_par_workers(workers));
        assert_eq!(
            d0,
            digest(&par),
            "{label}: digest diverged at {workers} workers"
        );
    }
}

/// Clean runs (no faults) with tracing, attribution, audit, and windowed
/// metrics attached: spinning, HyperPlane, and the Fig. 10 imbalance —
/// in both RNG stream modes (the keyed default and the sequential
/// replicated-chain baseline).
#[test]
fn parallel_digest_matches_serial_across_configs() {
    for mode in MODES {
        assert_worker_invariant(&format!("spinning/{mode:?}"), || {
            observed(base(Notifier::Spinning)).with_rng_stream_mode(mode)
        });
        assert_worker_invariant(&format!("hyperplane/{mode:?}"), || {
            observed(base(Notifier::hyperplane())).with_rng_stream_mode(mode)
        });
        assert_worker_invariant(&format!("fig10-imbalance/{mode:?}"), || {
            observed(fig10()).with_rng_stream_mode(mode)
        });
    }
}

/// Full chaos — correlated bursts, a storm phase, live doorbell churn,
/// silent evictions, timeouts, a watchdog — with every observer attached:
/// still digest-identical for any worker count.
#[test]
fn parallel_digest_matches_serial_under_chaos() {
    let storm = FaultPlan::parse("drop=0.5,delay=0.2,evict=0.01,spurious=0.05").unwrap();
    for mode in MODES {
        let mk = || {
            observed(base(Notifier::hyperplane()))
                .with_faults(storm.scaled(0.5))
                .with_chaos(
                    ChaosSchedule::none()
                        .with_burst(2_000_000, 500_000, 2.0)
                        .with_phase(3_000_000, 6_000_000, storm.clone())
                        .with_churn(2_500_000),
                )
                .with_silent_evictions()
                .with_qwait_timeout(20_000)
                .with_watchdog(4_000_000)
                .with_seed(0xC4A0_5C4A)
                .with_rng_stream_mode(mode)
        };
        assert_worker_invariant(&format!("chaos/{mode:?}"), mk);

        // Attribution conservation and the audit must also survive the
        // merge.
        let par = runner::run(mk().with_par_workers(4));
        let a = par.attrib_report().expect("attribution enabled");
        assert!(a.conserved(), "merged attribution violated conservation");
        assert!(par.audit_report().expect("audit enabled").ok());
    }
}

/// The worker count maps lanes onto threads and nothing else: worker
/// counts that exceed the lane count, or don't divide it, change nothing.
#[test]
fn worker_count_beyond_lane_count_is_inert() {
    let d0 = digest(&runner::run(
        base(Notifier::hyperplane()).with_par_workers(1),
    ));
    for workers in [3, 5, 64] {
        let d = digest(&runner::run(
            base(Notifier::hyperplane()).with_par_workers(workers),
        ));
        assert_eq!(d0, d, "digest diverged at {workers} workers");
    }
}

/// The sync window is a scheduling granularity, not a semantic knob —
/// but run control is evaluated at window boundaries, so the *same*
/// window must be used when comparing worker counts (pinned here), and
/// every window setting — fixed strides and the auto-lookahead schedule
/// — must still agree between serial and parallel, in both RNG modes.
#[test]
fn sync_window_choice_is_worker_invariant() {
    let windows = [
        SyncWindow::Fixed(10_000),
        SyncWindow::Fixed(65_536),
        SyncWindow::Fixed(1_000_000),
        SyncWindow::Lookahead,
    ];
    for mode in MODES {
        for window in windows {
            let mk = || {
                base(Notifier::hyperplane())
                    .with_sync_window_mode(window)
                    .with_rng_stream_mode(mode)
            };
            let serial = digest(&runner::run(mk().with_par_workers(1)));
            for workers in [2, 4] {
                let par = digest(&runner::run(mk().with_par_workers(workers)));
                assert_eq!(
                    serial, par,
                    "{window:?}/{mode:?}: serial vs {workers}-worker diverged"
                );
            }
        }
    }
}

/// The tentpole's deterministic win, pinned end to end: under keyed
/// streams every simulated event is group-local, so the merged kernel
/// profile (per-event counts *and* attributed cycles), the window
/// `event_queue_depth` series, and the total event count are all
/// worker-count-invariant — the two PR 8 diagnostic deltas are gone —
/// while the sequential baseline still pays the replicated-chain tax.
#[test]
fn keyed_mode_kills_the_replicated_chain_tax() {
    let mk = |mode| observed(base(Notifier::hyperplane())).with_rng_stream_mode(mode);
    let serial = runner::run(mk(RngStreamMode::Keyed).with_par_workers(1));
    let par = runner::run(mk(RngStreamMode::Keyed).with_par_workers(4));

    // Kernel profile per-event counts are bit-identical. (Attributed
    // cycles are per-lane clock advance — concurrent lanes each span the
    // full run, so the cycle column sums lane-time and scales with lane
    // count by construction; only counts are worker-invariant.)
    let profile = |r: &ExperimentResult| -> Vec<(String, u64)> {
        r.kernel_profile()
            .expect("profiling always collected")
            .rows()
            .into_iter()
            .map(|(l, c, _cycles)| (l.to_string(), c))
            .collect()
    };
    assert_eq!(
        profile(&serial),
        profile(&par),
        "keyed-mode kernel profile diverged across worker counts"
    );

    // The event_queue_depth window series merges to the serial series.
    let depths = |r: &ExperimentResult| -> Vec<u64> {
        r.windows().iter().map(|w| w.event_queue_depth).collect()
    };
    assert_eq!(
        depths(&serial),
        depths(&par),
        "keyed-mode event_queue_depth series diverged across worker counts"
    );

    // No replicated chains in keyed mode; lane generation sums conserve.
    assert_eq!(serial.replicated_chain_events(), 0);
    assert_eq!(par.replicated_chain_events(), 0);
    assert_eq!(
        serial.lane_generated_arrivals().iter().sum::<u64>(),
        par.lane_generated_arrivals().iter().sum::<u64>(),
        "per-lane generation counters must sum to the serial count"
    );
    assert_eq!(par.lane_generated_arrivals().len(), 4);

    // The sequential baseline at 4 lanes replays foreign chains: the tax
    // is visible both in the gated-event counter and in total kernel
    // events (well past the 1.1x bound keyed mode is held to).
    let seq_par = runner::run(mk(RngStreamMode::Sequential).with_par_workers(4));
    assert!(seq_par.replicated_chain_events() > 0);
    let total = |r: &ExperimentResult| r.kernel_profile().unwrap().total_events();
    assert_eq!(total(&par), total(&serial));
    let seq_serial = runner::run(mk(RngStreamMode::Sequential).with_par_workers(1));
    let tax = total(&seq_par) as f64 / total(&seq_serial) as f64;
    assert!(
        tax > 1.5,
        "expected a visible replicated-chain tax in sequential mode, got {tax:.3}x"
    );
}

/// Property test for the fabric's merge primitive: merging N per-lane
/// timestamped streams must reproduce a single event queue's pop order
/// exactly, when the oracle queue is fed in lane-major insertion order
/// (the serial engine's tie-break is insertion order; the merge's is
/// `(time, lane, within-lane order)` — identical under that feeding).
#[test]
fn windowed_stream_merge_matches_single_queue_oracle() {
    // Deterministic pseudo-random workload: times cluster heavily so
    // same-instant tie-breaks are exercised, not just hit by luck.
    let mut state = 0x9E37_79B9_97F4_A7C5u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for lanes in [1usize, 2, 3, 8] {
        let mut streams: Vec<Vec<(u64, u64)>> = vec![Vec::new(); lanes];
        for i in 0..2_000u64 {
            let t = next() % 97; // dense collisions
            streams[(next() % lanes as u64) as usize].push((t, i));
        }
        // Per-lane streams must be time-sorted here (a real lane pops in
        // time order); keep each lane's relative emission order for ties.
        for s in &mut streams {
            s.sort_by_key(|&(t, _)| t);
        }
        // Oracle: one event queue, fed lane-major.
        let mut oracle: EventQueue<u64> = EventQueue::new();
        for s in &streams {
            for &(t, id) in s {
                oracle.schedule_at(SimTime(t), id);
            }
        }
        let mut expect = Vec::new();
        while let Some((at, id)) = oracle.pop() {
            expect.push((at.since_start().count(), id));
        }
        let merged: Vec<(u64, u64)> = hp_par::merge_timestamped(streams)
            .into_iter()
            .map(|(t, _, id)| (t, id))
            .collect();
        assert_eq!(merged, expect, "{lanes} lanes diverged from the oracle");
    }
}
