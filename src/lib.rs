//! # HyperPlane — a scalable low-latency notification accelerator for
//! software data planes
//!
//! A from-scratch Rust reproduction of *HyperPlane* (MICRO 2020): the
//! QWAIT programming model, the monitoring-set/ready-set hardware
//! microarchitecture, a discrete-event multicore simulator with a MESI
//! coherence model, the six evaluation workloads as real kernels, and a
//! harness that regenerates every figure of the paper's evaluation.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here.
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`device`] | `hp-core` | monitoring set, ready set/PPA, QWAIT, HW cost model |
//! | [`sdp`] | `hp-sdp` | spinning + HyperPlane data-plane engines, telemetry, power |
//! | [`mem`] | `hp-mem` | L1/LLC + directory-MESI coherence simulator |
//! | [`queues`] | `hp-queues` | doorbells, simulated queues, lock-free rings |
//! | [`traffic`] | `hp-traffic` | FB/PC/NC/SQ shapes, Poisson generation |
//! | [`workloads`] | `hp-workloads` | GRE, AES-CBC, steering, Reed–Solomon, RAID P+Q, dispatch |
//! | [`sim`] | `hp-sim` | event queue, cycle clock, histograms, RNG streams |
//!
//! ## Quickstart
//!
//! ```
//! use hyperplane::prelude::*;
//!
//! // Compare the two notification mechanisms on one configuration.
//! let mut cfg = ExperimentConfig::new(
//!     WorkloadKind::PacketEncap,
//!     TrafficShape::SingleQueue,
//!     256,
//! );
//! cfg.target_completions = 500; // keep the doctest quick
//!
//! let spinning = peak_throughput(&cfg);
//! let accel = peak_throughput(&cfg.clone().with_notifier(Notifier::hyperplane()));
//! assert!(accel.throughput_tps > spinning.throughput_tps);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hp_core as device;
pub use hp_mem as mem;
pub use hp_queues as queues;
pub use hp_sdp as sdp;
pub use hp_sim as sim;
pub use hp_traffic as traffic;
pub use hp_workloads as workloads;

/// The most commonly used types and functions, in one import.
pub mod prelude {
    pub use hp_core::qwait::{HyperPlaneConfig, HyperPlaneDevice, RearmAction};
    pub use hp_core::ready_set::{PpaKind, ServicePolicy};
    pub use hp_mem::system::{MemSystem, MemSystemConfig};
    pub use hp_mem::types::{AccessKind, Addr, AddrRange, CoreId};
    pub use hp_queues::sim::{QueueId, QueueLayout};
    pub use hp_sdp::config::{ExperimentConfig, Load, Notifier};
    pub use hp_sdp::runner::{peak_throughput, run, run_at_load, run_zero_load};
    pub use hp_sdp::{ExperimentResult, PowerModel, SmtCoRunner};
    pub use hp_sim::time::{Clock, Cycles, SimTime};
    pub use hp_traffic::shape::TrafficShape;
    pub use hp_workloads::service::WorkloadKind;
}
