//! The storage-side workloads on real data: Reed–Solomon erasure coding
//! (Cauchy matrix) and RAID P+Q protection, including failure injection
//! and recovery — the paper's erasure-coding and RAID-protection tasks.
//!
//! ```sh
//! cargo run --release --example storage_pipeline
//! ```

use hyperplane::workloads::raid::PqRaid;
use hyperplane::workloads::reed_solomon::ReedSolomon;
use std::time::Instant;

const BLOCK: usize = 64 * 1024;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Reed–Solomon: a 6+3 stripe of 64 KB shards.
    // ------------------------------------------------------------------
    println!("=== Reed-Solomon (6 data + 3 parity, Cauchy) ===");
    let rs = ReedSolomon::new(6, 3)?;
    let data: Vec<Vec<u8>> = (0..6)
        .map(|i| {
            (0..BLOCK)
                .map(|j| ((i * 7919 + j * 13) % 251) as u8)
                .collect()
        })
        .collect();

    let t = Instant::now();
    let parity = rs.encode(&data)?;
    let enc = t.elapsed();
    println!(
        "encoded {} KB in {:?} ({:.1} MB/s)",
        6 * BLOCK / 1024,
        enc,
        (6 * BLOCK) as f64 / enc.as_secs_f64() / 1e6
    );
    assert!(rs.verify(&data, &parity)?);

    // Kill three shards — the worst tolerable failure.
    let mut survivors: Vec<Option<Vec<u8>>> = data
        .iter()
        .cloned()
        .map(Some)
        .chain(parity.iter().cloned().map(Some))
        .collect();
    survivors[0] = None; // data shard
    survivors[4] = None; // data shard
    survivors[7] = None; // parity shard
    let t = Instant::now();
    let recovered = rs.reconstruct(&survivors)?;
    println!("recovered 3 lost shards in {:?}", t.elapsed());
    assert_eq!(recovered, data, "recovery must be bit-exact");
    println!("recovery verified bit-exact");

    // ------------------------------------------------------------------
    // RAID-6: P+Q over 8 data blocks, double-failure rebuild.
    // ------------------------------------------------------------------
    println!("\n=== RAID-6 P+Q (8 data blocks) ===");
    let raid = PqRaid::new(8)?;
    let blocks: Vec<Vec<u8>> = (0..8)
        .map(|i| {
            (0..BLOCK)
                .map(|j| ((i * 31 + j * 17 + 5) % 256) as u8)
                .collect()
        })
        .collect();
    let t = Instant::now();
    let (p, q) = raid.compute_pq(&blocks)?;
    let pq = t.elapsed();
    println!(
        "P+Q over {} KB in {:?} ({:.1} MB/s)",
        8 * BLOCK / 1024,
        pq,
        (8 * BLOCK) as f64 / pq.as_secs_f64() / 1e6
    );

    // Single-disk failure: P-only rebuild.
    let t = Instant::now();
    let rebuilt = raid.recover_one(&blocks, 3, &p)?;
    assert_eq!(rebuilt, blocks[3]);
    println!("single-failure rebuild (P) in {:?}", t.elapsed());

    // Double-disk failure: P+Q rebuild.
    let t = Instant::now();
    let (d1, d6) = raid.recover_two(&blocks, 1, 6, &p, &q)?;
    assert_eq!(d1, blocks[1]);
    assert_eq!(d6, blocks[6]);
    println!("double-failure rebuild (P+Q) in {:?}", t.elapsed());
    println!("all rebuilds bit-exact");
    Ok(())
}
