//! Flow-structured traffic: Zipf-popular flows hashed through a Toeplitz/
//! RETA pipeline produce organically skewed queue loads — the real-NIC
//! origin of the paper's concentrated traffic shapes — and HyperPlane's
//! advantage carries over from the synthetic shapes to this realistic
//! arrival process.
//!
//! ```sh
//! cargo run --release --example flow_traffic
//! ```

use hyperplane::prelude::*;
use hyperplane::sdp::config::TrafficSource;
use hyperplane::sim::rng::RngFactory;
use hyperplane::traffic::flows::FlowTrafficGenerator;

fn main() {
    // ------------------------------------------------------------------
    // Part 1: what the traffic looks like.
    // ------------------------------------------------------------------
    let mut gen = FlowTrafficGenerator::new(
        2_000, // flows
        1.2,   // zipf exponent
        64,    // queues
        1e6,   // packets/s
        Clock::default(),
        RngFactory::new(42).stream(0),
    );
    let mut per_queue = vec![0u64; 64];
    for _ in 0..200_000 {
        per_queue[gen.next_arrival().queue.0 as usize] += 1;
    }
    let mut sorted = per_queue.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    let top8: u64 = sorted[..8].iter().sum();
    println!("=== Emergent queue skew (2000 Zipf flows -> RETA -> 64 queues) ===");
    println!(
        "hottest queue: {:.1}% of packets",
        sorted[0] as f64 / total as f64 * 100.0
    );
    println!(
        "top 8 queues:  {:.1}% of packets",
        top8 as f64 / total as f64 * 100.0
    );
    println!(
        "cold queues (<0.2% each): {}",
        sorted
            .iter()
            .filter(|&&c| (c as f64) < total as f64 * 0.002)
            .count()
    );

    // ------------------------------------------------------------------
    // Part 2: the data plane under this traffic.
    // ------------------------------------------------------------------
    println!("\n=== Spinning vs HyperPlane under flow traffic (512 queues) ===");
    let mut cfg =
        ExperimentConfig::new(WorkloadKind::PacketEncap, TrafficShape::FullyBalanced, 512);
    cfg.traffic = TrafficSource::Flows {
        flows: 2_000,
        zipf_s: 1.2,
    };
    cfg.target_completions = 10_000;

    let spin = peak_throughput(&cfg);
    let hp = peak_throughput(&cfg.clone().with_notifier(Notifier::hyperplane()));
    println!("spinning:   {:.3} Mtasks/s", spin.throughput_mtps());
    println!(
        "hyperplane: {:.3} Mtasks/s ({:.2}x)",
        hp.throughput_mtps(),
        hp.throughput_tps / spin.throughput_tps
    );

    let spin_zl = run_zero_load(&cfg);
    let hp_zl = run_zero_load(&cfg.clone().with_notifier(Notifier::hyperplane()));
    println!(
        "zero-load p99: spinning {:.1} us vs hyperplane {:.1} us ({:.1}x)",
        spin_zl.p99_latency_us(),
        hp_zl.p99_latency_us(),
        spin_zl.p99_latency_us() / hp_zl.p99_latency_us()
    );
}
