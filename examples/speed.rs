//! Single-thread simulation-kernel speed measurement.
//!
//! Runs two bare (untraced) configurations that exercise the engine hot
//! loop — the event scheduler, the coherence directory, and per-event
//! bookkeeping — and reports events/sec from `hp_sim::profile`. This is
//! the number `BENCH_speed.json` records as
//! `single_thread_events_per_sec`.
//!
//! ```sh
//! cargo run --release --example speed
//! ```

use hyperplane::prelude::*;
use hyperplane::traffic::shape::TrafficShape;
use hyperplane::workloads::service::WorkloadKind;

fn measure(label: &str, cfg: ExperimentConfig) -> (u64, f64) {
    // Warm caches/allocator with one short run, then measure.
    let mut warm = cfg.clone();
    warm.target_completions = 1_000;
    let _ = run(warm);
    let r = run(cfg);
    let events = r.kernel_profile().map(|p| p.total_events()).unwrap_or(0);
    let eps = r.events_per_sec_wall();
    println!(
        "{label:>28}: {events:>9} events in {:.3} s wall  ({:.0} events/s)",
        r.wall_secs(),
        eps
    );
    (events, eps)
}

fn main() {
    let mut spin = ExperimentConfig::new(WorkloadKind::PacketEncap, TrafficShape::SingleQueue, 500);
    spin.target_completions = 8_000;
    let mut hp = spin.clone().with_notifier(Notifier::hyperplane());
    hp.target_completions = 60_000;

    let (se, sw) = measure("spinning sq500 saturation", spin);
    let (he, hw) = measure("hyperplane sq500 saturation", hp);
    let total = se + he;
    let secs = se as f64 / sw + he as f64 / hw;
    println!(
        "{:>28}: {total} events in {secs:.3} s wall  ({:.0} events/s)",
        "combined",
        total as f64 / secs
    );
}
