//! `QwaitSession`: Algorithm 1 as a software library — a Go-`select`-style
//! multi-queue consumer over real rings and doorbells, with a weighted
//! round-robin policy giving a premium queue 4× the service share.
//!
//! ```sh
//! cargo run --release --example qwait_select
//! ```

use hyperplane::device::ready_set::ServicePolicy;
use hyperplane::device::session::QwaitSession;
use hyperplane::prelude::*;
use hyperplane::queues::doorbell::Doorbell;
use hyperplane::queues::ring::{Full, MpmcRing};
use std::sync::Arc;
use std::thread;

const QUEUES: usize = 4;
const PER_PRODUCER: u64 = 20_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Queue 0 is the premium tenant (weight 4); the rest best-effort.
    let mut weights = vec![1u32; QUEUES];
    weights[0] = 4;
    let mut session = QwaitSession::new(QUEUES, ServicePolicy::WeightedRoundRobin { weights });

    let rings: Vec<_> = (0..QUEUES)
        .map(|_| MpmcRing::<u64>::with_capacity(1024))
        .collect();
    let doorbells: Vec<Arc<Doorbell>> = (0..QUEUES).map(|_| Arc::new(Doorbell::new())).collect();
    for (i, db) in doorbells.iter().enumerate() {
        session.add(QueueId(i as u32), Arc::clone(db))?;
    }

    // Producers: one per queue, all saturating.
    let producers: Vec<_> = rings
        .iter()
        .enumerate()
        .map(|(q, (tx, _))| {
            let tx = tx.clone();
            let db = Arc::clone(&doorbells[q]);
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(Full(back)) => {
                                v = back;
                                thread::yield_now();
                            }
                        }
                    }
                    db.ring(1);
                }
            })
        })
        .collect();

    // The consumer is Algorithm 1, line for line.
    let consumers: Vec<_> = rings.iter().map(|(_, rx)| rx.clone()).collect();
    let served = thread::spawn(move || {
        let mut served = vec![0u64; QUEUES];
        let mut first_10k = Vec::new();
        let total: u64 = QUEUES as u64 * PER_PRODUCER;
        let mut done = 0u64;
        while done < total {
            let qid = session.wait(); // QWAIT
            let i = qid.0 as usize;
            if doorbells[i].try_take(1) {
                // dequeue(QID)
                while consumers[i].pop().is_none() {
                    thread::yield_now();
                }
                served[i] += 1;
                done += 1;
                if first_10k.len() < 10_000 {
                    first_10k.push(i);
                }
            }
            session.reconsider(qid).expect("registered"); // QWAIT-RECONSIDER
        }
        (served, first_10k)
    });

    for p in producers {
        p.join().expect("producer");
    }
    let (served, first_10k) = served.join().expect("consumer");

    println!("items served per queue: {served:?} (all {PER_PRODUCER}: every item exactly once)");
    let premium_share =
        first_10k.iter().filter(|&&q| q == 0).count() as f64 / first_10k.len() as f64;
    println!(
        "premium queue share of the first 10k grants: {:.1}% (fair share would be 25%; \
         approaches 4/7 = 57% under sustained backlog)",
        premium_share * 100.0,
    );
    assert!(
        premium_share > 0.25,
        "weighting must visibly favor the premium queue"
    );
    Ok(())
}
