//! Quickstart: drive the HyperPlane device by hand, then run a full
//! spinning-vs-HyperPlane experiment through the simulator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hyperplane::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Part 1: the device, bare-metal style (Algorithm 1 by hand).
    // ------------------------------------------------------------------
    println!("=== Part 1: driving the HyperPlane device directly ===");

    // Reserve a doorbell range and register four queues.
    let layout = QueueLayout::new(4, 8, 4);
    let mut dev = HyperPlaneDevice::new(HyperPlaneConfig::table1(), layout.doorbell_range());
    for q in 0..4 {
        dev.qwait_add(QueueId(q), layout.doorbell(QueueId(q)).line())?;
    }

    // A QWAIT with no pending work would halt the core.
    assert_eq!(dev.qwait_select(), None);
    println!("QWAIT on idle queues -> halt (no fruitless spinning)");

    // Producers ring doorbells 2 and 0 (the monitoring set snoops the
    // GetM transactions these stores generate).
    dev.snoop_getm(layout.doorbell(QueueId(2)).line());
    dev.snoop_getm(layout.doorbell(QueueId(0)).line());

    // Round-robin service order.
    let first = dev.qwait_select().expect("two queues ready");
    let second = dev.qwait_select().expect("one queue ready");
    println!("QWAIT grants: {first}, then {second} (round-robin)");

    // VERIFY + RECONSIDER: queue 0 had one item; after dequeue it is
    // empty, so the device re-arms it and asks us to issue a GetS probe.
    let (ready, _) = dev.qwait_verify(second, 1);
    assert!(ready);
    match dev.qwait_reconsider(second, 0) {
        RearmAction::ProbeShared(line) => {
            println!("queue drained -> re-armed in monitoring set (probe {line})")
        }
        RearmAction::None => println!("queue still backlogged -> re-activated in ready set"),
    }

    // ------------------------------------------------------------------
    // Part 2: the full simulated data plane.
    // ------------------------------------------------------------------
    println!("\n=== Part 2: spinning vs HyperPlane at 500 queues (SQ traffic) ===");
    let mut cfg = ExperimentConfig::new(WorkloadKind::PacketEncap, TrafficShape::SingleQueue, 500);
    cfg.target_completions = 10_000;

    let spin = peak_throughput(&cfg);
    let hp = peak_throughput(&cfg.clone().with_notifier(Notifier::hyperplane()));
    println!("spinning:   {:.3} Mtasks/s", spin.throughput_mtps());
    println!("hyperplane: {:.3} Mtasks/s", hp.throughput_mtps());
    println!(
        "speedup:    {:.1}x",
        hp.throughput_tps / spin.throughput_tps
    );

    let spin_zl = run_zero_load(&cfg);
    let hp_zl = run_zero_load(&cfg.clone().with_notifier(Notifier::hyperplane()));
    println!(
        "zero-load p99: spinning {:.1} us vs hyperplane {:.1} us ({:.1}x)",
        spin_zl.p99_latency_us(),
        hp_zl.p99_latency_us(),
        spin_zl.p99_latency_us() / hp_zl.p99_latency_us()
    );
    Ok(())
}
