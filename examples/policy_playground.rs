//! Service-policy playground: round-robin, weighted round-robin, and
//! strict priority on the ready set, plus QWAIT-DISABLE rate limiting —
//! §IV-B of the paper, observable grant by grant.
//!
//! ```sh
//! cargo run --release --example policy_playground
//! ```

use hyperplane::device::ready_set::{PpaKind, ReadySet, ServicePolicy};
use hyperplane::prelude::*;

fn grants(rs: &mut ReadySet, rounds: usize, backlogged: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    for _ in 0..rounds {
        for &q in backlogged {
            rs.activate(QueueId(q));
        }
        if let Some(q) = rs.select() {
            out.push(q.0);
        }
    }
    out
}

fn main() {
    // Round-robin: fair rotation over backlogged queues.
    let mut rr = ReadySet::new(4, ServicePolicy::RoundRobin, PpaKind::BrentKung);
    println!(
        "round-robin over {{0,1,2,3}}: {:?}",
        grants(&mut rr, 8, &[0, 1, 2, 3])
    );

    // Weighted round-robin: a premium tenant (queue 0, weight 4) gets 4 of
    // every 6 grants.
    let mut wrr = ReadySet::new(
        3,
        ServicePolicy::WeightedRoundRobin {
            weights: vec![4, 1, 1],
        },
        PpaKind::BrentKung,
    );
    println!(
        "WRR weights [4,1,1]:        {:?}",
        grants(&mut wrr, 12, &[0, 1, 2])
    );

    // Strict priority: queue 0 starves the rest while backlogged — the
    // paper notes this policy is rarely usable for exactly this reason.
    let mut strict = ReadySet::new(3, ServicePolicy::StrictPriority, PpaKind::BrentKung);
    println!(
        "strict priority:            {:?}",
        grants(&mut strict, 8, &[0, 1, 2])
    );

    // QWAIT-DISABLE as a rate limiter (the paper's congestion-control use
    // case): disable queue 0 for a "timer period", then re-enable.
    let mut limited = ReadySet::new(2, ServicePolicy::RoundRobin, PpaKind::BrentKung);
    let mut seq = Vec::new();
    for step in 0..12 {
        limited.activate(QueueId(0));
        limited.activate(QueueId(1));
        if step == 2 {
            limited.disable(QueueId(0)); // rate limit kicks in
        }
        if step == 8 {
            limited.enable(QueueId(0)); // timer expired
        }
        if let Some(q) = limited.select() {
            seq.push(q.0);
        }
    }
    println!("rate-limited queue 0:       {seq:?} (gap = disabled window)");

    // PPA equivalence: both hardware models make identical decisions.
    let mut ripple = ReadySet::new(64, ServicePolicy::RoundRobin, PpaKind::Ripple);
    let mut bk = ReadySet::new(64, ServicePolicy::RoundRobin, PpaKind::BrentKung);
    for q in [5u32, 17, 23, 42, 63, 0, 8] {
        ripple.activate(QueueId(q));
        bk.activate(QueueId(q));
    }
    let a: Vec<_> = std::iter::from_fn(|| ripple.select()).collect();
    let b: Vec<_> = std::iter::from_fn(|| bk.select()).collect();
    assert_eq!(a, b);
    println!("ripple PPA == Brent-Kung PPA on the same inputs: {a:?}");
    println!(
        "gate depth at 1024 queues: ripple {} levels vs Brent-Kung {} levels",
        PpaKind::Ripple.gate_levels(1024),
        PpaKind::BrentKung.gate_levels(1024),
    );
}
