//! A real (multi-threaded, lock-free) packet pipeline using the runnable
//! substrate: producers build genuine IPv4 packets, push them through an
//! MPMC ring with doorbell notification, and a data-plane thread
//! GRE-encapsulates them into IPv6 and steers the tunnels with the
//! Toeplitz session table — the paper's packet-encapsulation and
//! packet-steering tasks on real bytes.
//!
//! ```sh
//! cargo run --release --example packet_pipeline
//! ```

use hyperplane::queues::doorbell::Doorbell;
use hyperplane::queues::ring::MpmcRing;
use hyperplane::workloads::packet::{build_ipv4_packet, GreEncapsulator, Ipv6Header};
use hyperplane::workloads::steering::{FlowKey, PacketSteerer};
use std::sync::Arc;
use std::time::Instant;

const PACKETS_PER_PRODUCER: u64 = 15_000;
const PRODUCERS: u64 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (tx, rx) = MpmcRing::with_capacity(4096);
    let doorbell = Arc::new(Doorbell::new());

    // Producers: emulated I/O devices writing packets + ringing doorbells.
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let tx = tx.clone();
            let db = Arc::clone(&doorbell);
            std::thread::spawn(move || {
                for i in 0..PACKETS_PER_PRODUCER {
                    let src = [10, p as u8, (i >> 8) as u8, i as u8];
                    let pkt = build_ipv4_packet(src, [192, 168, 1, 1], i as u16, &[0xAB; 64]);
                    let mut pkt = pkt;
                    loop {
                        match tx.push(pkt) {
                            Ok(()) => break,
                            Err(full) => {
                                pkt = full.0;
                                std::thread::yield_now();
                            }
                        }
                    }
                    db.ring(1);
                }
            })
        })
        .collect();

    // The data plane: encapsulate + steer.
    let dp = {
        let db = Arc::clone(&doorbell);
        std::thread::spawn(move || {
            let tunnel = GreEncapsulator::new([0xfd; 16], [0xfe; 16]);
            let mut steerer = PacketSteerer::new(1 << 16, 8);
            let mut out_bytes = 0u64;
            let mut per_dest = [0u64; 8];
            let mut processed = 0u64;
            let total = PRODUCERS * PACKETS_PER_PRODUCER;
            while processed < total {
                if !db.try_take(1) {
                    std::thread::yield_now();
                    continue;
                }
                let pkt = loop {
                    match rx.pop() {
                        Some(p) => break p,
                        None => std::thread::yield_now(),
                    }
                };
                let wrapped = tunnel
                    .encapsulate(&pkt)
                    .expect("producer packets are valid");
                let outer = Ipv6Header::parse(&wrapped).expect("we built it");
                let flow = FlowKey {
                    src_ip: [pkt[12], pkt[13], pkt[14], pkt[15]],
                    dst_ip: [pkt[16], pkt[17], pkt[18], pkt[19]],
                    src_port: u16::from(pkt[4]) << 8 | u16::from(pkt[5]),
                    dst_port: 443,
                    protocol: pkt[9],
                };
                let dest = steerer
                    .steer(&flow)
                    .expect("table sized for the flow count");
                assert_eq!(
                    outer.payload_len as usize + 40,
                    wrapped.len(),
                    "outer length consistent"
                );
                per_dest[dest as usize] += 1;
                out_bytes += wrapped.len() as u64;
                processed += 1;
            }
            (processed, out_bytes, per_dest, steerer.sessions())
        })
    };

    let start = Instant::now();
    for p in producers {
        p.join().expect("producer panicked");
    }
    let (processed, out_bytes, per_dest, sessions) = dp.join().expect("data plane panicked");
    let dt = start.elapsed().as_secs_f64();

    println!(
        "processed {processed} packets in {dt:.2}s ({:.2} Mpps)",
        processed as f64 / dt / 1e6
    );
    println!("encapsulated output: {:.1} MB", out_bytes as f64 / 1e6);
    println!("live sessions in affinity table: {sessions}");
    println!("per-destination packet counts: {per_dest:?}");
    let max = per_dest.iter().max().copied().unwrap_or(0) as f64;
    let min = per_dest.iter().min().copied().unwrap_or(0) as f64;
    println!("steering balance (min/max): {:.2}", min / max.max(1.0));
    Ok(())
}
