//! Host-side calibration: runs each of the six real workload kernels and
//! reports measured ns/task next to the simulator's calibrated service
//! times (DESIGN.md §6). Absolute numbers differ from the paper's testbed;
//! the *ordering* should match.
//!
//! ```sh
//! cargo run --release --example calibrate
//! ```

use hyperplane::workloads::service::{calibrate_host_ns, warmup, WorkloadKind};

fn main() {
    warmup();
    println!(
        "{:<24} {:>14} {:>18}",
        "workload", "host ns/task", "simulated us/task"
    );
    println!("{}", "-".repeat(58));
    let mut rows: Vec<(WorkloadKind, f64)> = WorkloadKind::ALL
        .iter()
        .map(|&kind| {
            let iters = match kind {
                WorkloadKind::ErasureCoding | WorkloadKind::RaidProtection => 300,
                WorkloadKind::CryptoForward => 500,
                _ => 5_000,
            };
            (kind, calibrate_host_ns(kind, iters))
        })
        .collect();
    for (kind, ns) in &rows {
        println!(
            "{:<24} {:>14.0} {:>18.1}",
            kind.name(),
            ns,
            kind.mean_service_us()
        );
    }

    // Check ordering agreement between host measurement and calibration.
    let mut by_host = rows.clone();
    by_host.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    rows.sort_by(|a, b| {
        a.0.mean_service_us()
            .partial_cmp(&b.0.mean_service_us())
            .expect("finite")
    });
    let host_order: Vec<&str> = by_host.iter().map(|(k, _)| k.name()).collect();
    let sim_order: Vec<&str> = rows.iter().map(|(k, _)| k.name()).collect();
    println!("\nhost order:      {host_order:?}");
    println!("simulated order: {sim_order:?}");
}
